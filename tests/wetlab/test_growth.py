"""Tests for growth-curve simulation."""

import numpy as np
import pytest

from repro.wetlab.assays import STANDARD_ASSAYS
from repro.wetlab.binding import InhibitionProfile
from repro.wetlab.growth import GrowthCurve, GrowthModel, simulate_growth_curve
from repro.wetlab.strains import Strain, make_standard_strains


@pytest.fixture(scope="module")
def strains():
    profile = InhibitionProfile("YAL017W", 0.7183, 0.3524, 0.0721)
    return make_standard_strains(profile, knockout_label="ΔPSK1")


class TestUnstressedGrowth:
    def test_logistic_saturation(self):
        wt = Strain("WT", 1.0)
        curve = simulate_growth_curve(wt, None, hours=72, dt=0.1)
        model = GrowthModel()
        assert curve.final_density == pytest.approx(
            model.carrying_capacity, rel=0.05
        )

    def test_monotone_without_death(self):
        wt = Strain("WT", 1.0)
        curve = simulate_growth_curve(wt, None)
        assert np.all(np.diff(curve.cells) >= -1e-9)

    def test_time_to_density(self):
        wt = Strain("WT", 1.0)
        curve = simulate_growth_curve(wt, None, hours=48)
        t_half = curve.time_to_density(GrowthModel().carrying_capacity / 2)
        assert t_half is not None
        assert 5 < t_half < 40

    def test_burden_slows_growth(self):
        light = simulate_growth_curve(Strain("A", 1.0), None, hours=10)
        heavy = simulate_growth_curve(
            Strain("B", 1.0, growth_burden=0.3), None, hours=10
        )
        assert heavy.final_density < light.final_density


class TestStressedGrowth:
    def test_strain_ordering_under_uv(self, strains):
        assay = STANDARD_ASSAYS["ultraviolet"]
        finals = {
            s.name: simulate_growth_curve(s, assay, hours=24).final_density
            for s in strains
        }
        wt, wt_plus, inhibitor, knockout = (finals[s.name] for s in strains)
        assert knockout < inhibitor
        assert inhibitor < wt
        assert abs(wt - wt_plus) / wt < 0.35

    def test_knockout_culture_declines(self, strains):
        assay = STANDARD_ASSAYS["ultraviolet"]
        knockout = strains[-1]
        curve = simulate_growth_curve(knockout, assay, hours=24)
        # Fully sensitised: death dominates, the culture shrinks.
        assert curve.final_density < curve.cells[0]

    def test_stress_reduces_inoculum_immediately(self, strains):
        assay = STANDARD_ASSAYS["ultraviolet"]
        wt = strains[0]
        stressed = simulate_growth_curve(wt, assay, inoculum=1e5)
        unstressed = simulate_growth_curve(wt, None, inoculum=1e5)
        assert stressed.cells[0] < unstressed.cells[0]


class TestNoiseAndDeterminism:
    def test_deterministic_without_noise(self, strains):
        a = simulate_growth_curve(strains[0], None)
        b = simulate_growth_curve(strains[0], None)
        assert np.array_equal(a.cells, b.cells)

    def test_noise_reproducible_by_seed(self, strains):
        a = simulate_growth_curve(strains[0], None, noise=0.05, seed=3)
        b = simulate_growth_curve(strains[0], None, noise=0.05, seed=3)
        c = simulate_growth_curve(strains[0], None, noise=0.05, seed=4)
        assert np.array_equal(a.cells, b.cells)
        assert not np.array_equal(a.cells, c.cells)


class TestValidation:
    def test_args(self, strains):
        with pytest.raises(ValueError):
            simulate_growth_curve(strains[0], None, hours=0)
        with pytest.raises(ValueError):
            simulate_growth_curve(strains[0], None, dt=100.0, hours=10.0)
        with pytest.raises(ValueError):
            simulate_growth_curve(strains[0], None, inoculum=0)
        with pytest.raises(ValueError):
            simulate_growth_curve(strains[0], None, noise=-1)

    def test_model_validation(self):
        with pytest.raises(ValueError):
            GrowthModel(max_growth_rate=0)
        with pytest.raises(ValueError):
            GrowthModel(min_growth_fraction=2.0)

    def test_curve_validation(self):
        with pytest.raises(ValueError):
            GrowthCurve(np.arange(3.0), np.arange(4.0), "X")
