"""Tests for the spot-test simulation."""

import numpy as np
import pytest

from repro.wetlab.assays import STANDARD_ASSAYS
from repro.wetlab.binding import InhibitionProfile
from repro.wetlab.spot_test import run_spot_test
from repro.wetlab.strains import make_standard_strains


@pytest.fixture(scope="module")
def strains():
    profile = InhibitionProfile("YAL017W", 0.7183, 0.3524, 0.0721)
    return make_standard_strains(profile, knockout_label="ΔPSK1")


@pytest.fixture(scope="module")
def spot(strains):
    return run_spot_test(strains, STANDARD_ASSAYS["ultraviolet"], seed=0)


def test_grid_shape(spot):
    assert spot.intensity.shape == (4, 4)
    assert spot.dilutions == (0.1, 0.01, 0.001, 0.0001)


def test_intensity_bounds(spot):
    assert spot.intensity.min() >= 0.0
    assert spot.intensity.max() <= 1.0


def test_growth_fades_down_the_dilution_series(spot):
    for col in range(4):
        column = spot.intensity[:, col]
        # Monotone non-increasing down the plate (denser -> fainter).
        assert all(b <= a + 1e-9 for a, b in zip(column, column[1:]))


def test_sensitised_strains_fainter(spot):
    """Figure 10's reading: decreased growth in the inhibitor and knockout
    columns relative to the two controls."""
    total = spot.intensity.sum(axis=0)
    wt, wt_plus, inhibitor, knockout = total
    assert inhibitor < wt
    assert knockout < wt
    assert abs(wt - wt_plus) < 0.5


def test_render_contains_all_strains(spot):
    text = spot.render()
    for name in spot.strains:
        assert name in text
    assert "10^-1" in text
    assert "10^-4" in text


def test_deterministic(strains):
    a = run_spot_test(strains, STANDARD_ASSAYS["ultraviolet"], seed=5)
    b = run_spot_test(strains, STANDARD_ASSAYS["ultraviolet"], seed=5)
    assert np.array_equal(a.intensity, b.intensity)


def test_custom_dilution_steps(strains):
    spot = run_spot_test(
        strains, STANDARD_ASSAYS["ultraviolet"], dilution_steps=6, seed=0
    )
    assert spot.intensity.shape == (6, 4)


def test_validation(strains):
    with pytest.raises(ValueError):
        run_spot_test(strains, STANDARD_ASSAYS["ultraviolet"], dilution_steps=0)
    with pytest.raises(ValueError):
        run_spot_test(strains, STANDARD_ASSAYS["ultraviolet"], initial_cells=0)
