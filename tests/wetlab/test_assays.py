"""Tests for stress assays."""

import pytest

from repro.wetlab.assays import STANDARD_ASSAYS, StressAssay
from repro.wetlab.strains import Strain


def test_standard_assays_cover_all_stressors():
    from repro.synthetic.phenotypes import STRESSORS

    for stressor in STRESSORS:
        assert stressor in STANDARD_ASSAYS


def test_calibration_to_paper_controls():
    chx = STANDARD_ASSAYS["cycloheximide"]
    uv = STANDARD_ASSAYS["ultraviolet"]
    wt = Strain("WT", 1.0)
    ko = Strain("KO", 0.0)
    # Table 4: WT ~90 %, knockout ~27 %.
    assert chx.survival_probability(wt) == pytest.approx(0.90)
    assert chx.survival_probability(ko) == pytest.approx(0.27)
    # Table 5: WT ~55 %, knockout ~10 %.
    assert uv.survival_probability(wt) == pytest.approx(0.55)
    assert uv.survival_probability(ko) == pytest.approx(0.10)


def test_survival_monotone_in_activity():
    for assay in STANDARD_ASSAYS.values():
        survivals = [
            assay.survival_probability(Strain("S", a / 10)) for a in range(11)
        ]
        assert all(b >= a for a, b in zip(survivals, survivals[1:])), assay.name


def test_uv_steeper_than_cycloheximide():
    """The paper's UV assay separates partial inhibition from WT far more
    sharply than the cycloheximide one (Tables 4 vs 5)."""
    chx = STANDARD_ASSAYS["cycloheximide"]
    uv = STANDARD_ASSAYS["ultraviolet"]
    half = Strain("half", 0.5)
    # Normalised position between knockout floor and WT ceiling:
    chx_rel = (chx.survival_probability(half) - chx.knockout_survival) / (
        chx.wt_survival - chx.knockout_survival
    )
    uv_rel = (uv.survival_probability(half) - uv.knockout_survival) / (
        uv.wt_survival - uv.knockout_survival
    )
    assert uv_rel < chx_rel


def test_validation():
    with pytest.raises(ValueError):
        StressAssay("x", "s", "d", wt_survival=1.5, knockout_survival=0.1)
    with pytest.raises(ValueError, match="sensitises"):
        StressAssay("x", "s", "d", wt_survival=0.2, knockout_survival=0.5)
    with pytest.raises(ValueError):
        StressAssay(
            "x", "s", "d", wt_survival=0.9, knockout_survival=0.1, activity_exponent=0
        )
