"""Tests for random sequence generation."""

import numpy as np
import pytest

from repro.constants import NUM_AMINO_ACIDS, UNIFORM_AA_FREQUENCIES
from repro.sequences.random_gen import RandomSequenceGenerator


def test_fixed_length():
    gen = RandomSequenceGenerator(30, 30, seed=0)
    for _ in range(5):
        assert gen.encoded().size == 30


def test_length_range_respected():
    gen = RandomSequenceGenerator(10, 20, seed=0)
    sizes = {gen.encoded().size for _ in range(100)}
    assert min(sizes) >= 10
    assert max(sizes) <= 20
    assert len(sizes) > 1


def test_values_in_alphabet():
    gen = RandomSequenceGenerator(50, 50, seed=1)
    seq = gen.encoded()
    assert seq.dtype == np.uint8
    assert seq.min() >= 0
    assert seq.max() < NUM_AMINO_ACIDS


def test_seed_reproducible():
    a = RandomSequenceGenerator(40, 40, seed=9).encoded()
    b = RandomSequenceGenerator(40, 40, seed=9).encoded()
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = RandomSequenceGenerator(40, 40, seed=1).encoded()
    b = RandomSequenceGenerator(40, 40, seed=2).encoded()
    assert not np.array_equal(a, b)


def test_population_size():
    gen = RandomSequenceGenerator(20, 20, seed=0)
    pop = gen.population(17)
    assert len(pop) == 17


def test_population_negative_rejected():
    gen = RandomSequenceGenerator(20, 20, seed=0)
    with pytest.raises(ValueError):
        gen.population(-1)


def test_sequence_string_form():
    gen = RandomSequenceGenerator(25, 25, seed=0)
    s = gen.sequence()
    assert isinstance(s, str)
    assert len(s) == 25


def test_explicit_length_override():
    gen = RandomSequenceGenerator(25, 25, seed=0)
    assert gen.encoded(7).size == 7


def test_invalid_explicit_length():
    gen = RandomSequenceGenerator(25, 25, seed=0)
    with pytest.raises(ValueError):
        gen.encoded(0)


def test_composition_tracks_frequencies():
    gen = RandomSequenceGenerator(
        100, 100, frequencies=UNIFORM_AA_FREQUENCIES, seed=0
    )
    comp = gen.composition(samples=100)
    assert np.isclose(comp.sum(), 1.0)
    # Uniform within sampling noise.
    assert comp.max() < 0.08
    assert comp.min() > 0.02


def test_yeast_composition_default():
    gen = RandomSequenceGenerator(200, 200, seed=0)
    comp = gen.composition(samples=100)
    from repro.constants import AA_TO_INDEX

    assert comp[AA_TO_INDEX["L"]] > comp[AA_TO_INDEX["W"]]


def test_bad_bounds_rejected():
    with pytest.raises(ValueError):
        RandomSequenceGenerator(0, 5)
    with pytest.raises(ValueError):
        RandomSequenceGenerator(10, 5)


def test_bad_frequencies_rejected():
    with pytest.raises(ValueError):
        RandomSequenceGenerator(5, 5, frequencies=np.ones(20))
    with pytest.raises(ValueError):
        RandomSequenceGenerator(5, 5, frequencies=np.ones(5) / 5)
