"""Tests for FASTA I/O."""

import pytest

from repro.sequences.fasta import parse_fasta, read_fasta, write_fasta
from repro.sequences.protein import Protein


def test_parse_basic():
    text = ">P1 first protein\nMKT\nLLV\n>P2\nACDE\n"
    proteins = parse_fasta(text)
    assert [p.name for p in proteins] == ["P1", "P2"]
    assert proteins[0].sequence == "MKTLLV"
    assert proteins[0].annotations["description"] == "first protein"
    assert proteins[1].sequence == "ACDE"
    assert "description" not in proteins[1].annotations


def test_parse_blank_lines_ignored():
    proteins = parse_fasta(">P1\n\nMKT\n\n\nLLV\n")
    assert proteins[0].sequence == "MKTLLV"


def test_parse_empty_header_rejected():
    with pytest.raises(ValueError, match="empty FASTA header"):
        parse_fasta(">\nMKT\n")


def test_parse_data_before_header_rejected():
    with pytest.raises(ValueError, match="before any header"):
        parse_fasta("MKT\n>P1\nACD\n")


def test_parse_duplicate_names_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        parse_fasta(">P1\nMKT\n>P1\nACD\n")


def test_parse_empty_text():
    assert parse_fasta("") == []


def test_roundtrip(tmp_path):
    proteins = [
        Protein("P1", "MKTLLV" * 20, {"description": "long one"}),
        Protein("P2", "ACDE"),
    ]
    path = tmp_path / "out.fasta"
    write_fasta(proteins, path, width=30)
    back = read_fasta(path)
    assert back == proteins
    assert back[0].annotations["description"] == "long one"


def test_write_wraps_lines(tmp_path):
    path = tmp_path / "w.fasta"
    write_fasta([Protein("P1", "A" * 100)], path, width=40)
    lines = path.read_text().strip().split("\n")
    assert lines[0] == ">P1"
    assert [len(l) for l in lines[1:]] == [40, 40, 20]


def test_write_invalid_width(tmp_path):
    with pytest.raises(ValueError):
        write_fasta([Protein("P1", "ACD")], tmp_path / "x.fasta", width=0)
