"""Tests for physicochemical sequence properties."""

import pytest

from repro.sequences.properties import (
    KYTE_DOOLITTLE,
    RESIDUE_MASS,
    aromaticity,
    gravy,
    hydropathy_profile,
    molecular_weight,
    net_charge,
    synthesis_flags,
)


class TestTables:
    def test_cover_alphabet(self):
        from repro.constants import AMINO_ACIDS

        assert set(KYTE_DOOLITTLE) == set(AMINO_ACIDS)
        assert set(RESIDUE_MASS) == set(AMINO_ACIDS)

    def test_known_extremes(self):
        assert KYTE_DOOLITTLE["I"] == 4.5  # most hydrophobic
        assert KYTE_DOOLITTLE["R"] == -4.5  # most hydrophilic
        assert RESIDUE_MASS["G"] < RESIDUE_MASS["W"]


class TestHydropathy:
    def test_profile_length(self):
        assert hydropathy_profile("A" * 20, window=9).size == 12

    def test_short_sequence_empty_profile(self):
        assert hydropathy_profile("ACD", window=9).size == 0

    def test_hydrophobic_stretch_detected(self):
        seq = "D" * 10 + "I" * 10 + "D" * 10
        profile = hydropathy_profile(seq, window=5)
        assert profile.max() == pytest.approx(4.5)
        assert profile.min() == pytest.approx(-3.5)

    def test_gravy_known_value(self):
        assert gravy("I") == 4.5
        assert gravy("IR") == pytest.approx(0.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            hydropathy_profile("ACD", window=0)


class TestMassAndCharge:
    def test_glycine_weight(self):
        # Free glycine: residue mass + water = 75.07.
        assert molecular_weight("G") == pytest.approx(75.07, abs=0.1)

    def test_weight_additive(self):
        w1 = molecular_weight("MK")
        assert w1 == pytest.approx(
            RESIDUE_MASS["M"] + RESIDUE_MASS["K"] + 18.02, abs=0.01
        )

    def test_net_charge_signs(self):
        assert net_charge("KKRR") == pytest.approx(4.0)
        assert net_charge("DDEE") == pytest.approx(-4.0)
        assert net_charge("KD") == pytest.approx(0.0)
        assert net_charge("H") == pytest.approx(0.1)

    def test_aromaticity(self):
        assert aromaticity("FWY") == 1.0
        assert aromaticity("AAAA") == 0.0
        assert aromaticity("FA") == 0.5


class TestSynthesisFlags:
    def test_clean_sequence_unflagged(self):
        seq = "MKTDERGSNQAYHPLVCIWF" * 3
        assert synthesis_flags(seq) == []

    def test_hydrophobic_stretch_flagged(self):
        seq = "MKTDERGS" + "I" * 15 + "DERGSNQA"
        flags = synthesis_flags(seq)
        assert any("hydrophobic" in f for f in flags)

    def test_extreme_charge_flagged(self):
        flags = synthesis_flags("K" * 20)
        assert any("charge" in f for f in flags)

    def test_homopolymer_flagged(self):
        flags = synthesis_flags("MKTDER" + "Q" * 8 + "SNAYHP")
        assert any("homopolymer" in f for f in flags)

    def test_random_designs_rarely_flagged(self):
        from repro.sequences.random_gen import RandomSequenceGenerator

        gen = RandomSequenceGenerator(60, 60, seed=4)
        flagged = sum(1 for _ in range(20) if synthesis_flags(gen.sequence()))
        assert flagged <= 6
