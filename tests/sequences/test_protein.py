"""Tests for the Protein record."""

import pytest

from repro.sequences.encoding import decode
from repro.sequences.protein import Protein


def test_basic_construction():
    p = Protein("YAL001C", "MKTLLV")
    assert p.name == "YAL001C"
    assert len(p) == 6


def test_sequence_normalised():
    p = Protein("P1", "mktllv")
    assert p.sequence == "MKTLLV"


def test_invalid_sequence_names_protein():
    with pytest.raises(ValueError, match="YBL051C"):
        Protein("YBL051C", "MKX")


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        Protein("", "MKT")


def test_whitespace_name_rejected():
    with pytest.raises(ValueError):
        Protein("A B", "MKT")


def test_encoded_roundtrip_and_cache():
    p = Protein("P1", "MKTLLV")
    enc = p.encoded
    assert decode(enc) == "MKTLLV"
    assert p.encoded is enc  # cached


def test_encoded_readonly():
    p = Protein("P1", "MKTLLV")
    with pytest.raises(ValueError):
        p.encoded[0] = 3


def test_with_annotations_merges():
    p = Protein("P1", "MKT", {"a": 1})
    q = p.with_annotations(b=2)
    assert q.annotations == {"a": 1, "b": 2}
    assert p.annotations == {"a": 1}
    assert q.name == p.name


def test_equality_ignores_annotations():
    a = Protein("P1", "MKT", {"x": 1})
    b = Protein("P1", "MKT", {"x": 2})
    assert a == b


def test_repr_truncates_long_sequences():
    p = Protein("P1", "A" * 50)
    assert "..." in repr(p)
    assert "length=50" in repr(p)


def test_frozen():
    p = Protein("P1", "MKT")
    with pytest.raises(AttributeError):
        p.name = "other"
