"""Tests for reverse translation and codon usage."""

import pytest

from repro.constants import AMINO_ACIDS
from repro.sequences.codon import (
    CODON_TABLE,
    STOP_CODONS,
    YEAST_CODON_USAGE,
    gc_content,
    reverse_translate,
    translate,
)


class TestTables:
    def test_code_covers_61_codons(self):
        assert len(CODON_TABLE) == 61
        assert not set(STOP_CODONS) & set(CODON_TABLE)

    def test_every_amino_acid_encodable(self):
        assert set(CODON_TABLE.values()) == set(AMINO_ACIDS)

    def test_usage_normalised_per_residue(self):
        for aa, usage in YEAST_CODON_USAGE.items():
            assert sum(usage.values()) == pytest.approx(1.0)
            for codon in usage:
                assert CODON_TABLE[codon] == aa

    def test_usage_covers_all_residues(self):
        assert set(YEAST_CODON_USAGE) == set(AMINO_ACIDS)

    def test_usage_covers_all_codons(self):
        covered = {c for usage in YEAST_CODON_USAGE.values() for c in usage}
        assert covered == set(CODON_TABLE)


class TestRoundTrip:
    @pytest.mark.parametrize("mode", ["optimal", "sampled"])
    def test_translate_inverts_reverse_translate(self, mode):
        protein = "MKTLLVACDEFGHIKWYRNPQS"
        dna = reverse_translate(protein, mode=mode, seed=3)
        assert translate(dna) == protein

    def test_start_codon_added_when_needed(self):
        dna = reverse_translate("KTL")
        assert dna.startswith("ATG")
        assert translate(dna) == "MKTL"

    def test_start_codon_not_duplicated(self):
        dna = reverse_translate("MKT")
        assert dna.startswith("ATG")
        assert translate(dna) == "MKT"

    def test_stop_codon_appended(self):
        dna = reverse_translate("MKT")
        assert dna[-3:] in STOP_CODONS

    def test_no_flanks(self):
        dna = reverse_translate("KT", add_start=False, add_stop=False)
        assert len(dna) == 6
        assert translate(dna) == "KT"

    def test_optimal_is_deterministic(self):
        assert reverse_translate("MKTLLV") == reverse_translate("MKTLLV")

    def test_sampled_varies_by_seed_but_reproducible(self):
        a = reverse_translate("MKTLLV" * 5, mode="sampled", seed=1)
        b = reverse_translate("MKTLLV" * 5, mode="sampled", seed=1)
        c = reverse_translate("MKTLLV" * 5, mode="sampled", seed=2)
        assert a == b
        assert a != c
        assert translate(a) == translate(c)

    def test_optimal_uses_preferred_codons(self):
        # Glutamate's preferred yeast codon is GAA.
        dna = reverse_translate("E", add_start=False, add_stop=False)
        assert dna == "GAA"


class TestTranslate:
    def test_stops_at_stop(self):
        assert translate("ATGAAATAAGGG") == "MK"

    def test_invalid_codon(self):
        with pytest.raises(ValueError, match="invalid codon"):
            translate("ATGXYZ")

    def test_bad_length(self):
        with pytest.raises(ValueError, match="multiple of 3"):
            translate("ATGA")

    def test_rna_accepted(self):
        assert translate("AUGAAA") == "MK"

    def test_stop_only_rejected(self):
        with pytest.raises(ValueError, match="no residues"):
            translate("TAA")


class TestGC:
    def test_known_values(self):
        assert gc_content("GGCC") == 1.0
        assert gc_content("ATAT") == 0.0
        assert gc_content("ATGC") == 0.5

    def test_designed_dna_in_sane_band(self):
        dna = reverse_translate("MKTLLVACDEFGHIKWYRNPQS" * 4, mode="sampled", seed=0)
        assert 0.25 < gc_content(dna) < 0.65

    def test_validation(self):
        with pytest.raises(ValueError):
            gc_content("")
        with pytest.raises(ValueError):
            gc_content("ATGQ")


def test_reverse_translate_validation():
    with pytest.raises(ValueError):
        reverse_translate("")
    with pytest.raises(ValueError):
        reverse_translate("MKT", mode="magic")
    with pytest.raises(ValueError):
        reverse_translate("MXT")
