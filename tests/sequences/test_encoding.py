"""Tests for sequence encoding/decoding."""

import numpy as np
import pytest

from repro.constants import AA_TO_INDEX, AMINO_ACIDS
from repro.sequences.encoding import decode, encode, encode_many


def test_roundtrip():
    seq = "MKTLLVLAVCLGA"
    assert decode(encode(seq)) == seq


def test_encode_dtype_and_values():
    arr = encode(AMINO_ACIDS)
    assert arr.dtype == np.uint8
    assert np.array_equal(arr, np.arange(20))


def test_encode_respects_index_map():
    arr = encode("WAY")
    assert arr[0] == AA_TO_INDEX["W"]
    assert arr[1] == AA_TO_INDEX["A"]
    assert arr[2] == AA_TO_INDEX["Y"]


def test_encode_lowercase():
    assert np.array_equal(encode("acd"), encode("ACD"))


def test_encode_invalid_raises():
    with pytest.raises(ValueError):
        encode("ACX")


def test_encode_empty_raises():
    with pytest.raises(ValueError):
        encode("")


def test_encode_non_ascii_raises():
    with pytest.raises(ValueError):
        encode("ACé")


def test_decode_rejects_bad_indices():
    with pytest.raises(ValueError):
        decode(np.array([0, 20], dtype=np.uint8))


def test_decode_rejects_2d():
    with pytest.raises(ValueError):
        decode(np.zeros((2, 3), dtype=np.uint8))


def test_decode_accepts_lists():
    assert decode([0, 1, 2]) == AMINO_ACIDS[:3]


def test_decode_empty():
    assert decode(np.array([], dtype=np.uint8)) == ""


def test_encode_many():
    out = encode_many(["AC", "DE"])
    assert len(out) == 2
    assert decode(out[0]) == "AC"
    assert decode(out[1]) == "DE"
