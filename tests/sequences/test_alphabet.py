"""Tests for alphabet validation."""

import pytest

from repro.sequences.alphabet import is_valid_sequence, validate_sequence


def test_valid_sequence():
    assert is_valid_sequence("ACDEFGHIKLMNPQRSTVWY")


def test_empty_invalid():
    assert not is_valid_sequence("")


def test_lowercase_not_valid_for_is_valid():
    assert not is_valid_sequence("acd")


def test_ambiguity_codes_rejected():
    for ch in "BZXJUO*-":
        assert not is_valid_sequence(f"AC{ch}DE")


def test_validate_normalises_case():
    assert validate_sequence("acDef") == "ACDEF"


def test_validate_rejects_empty():
    with pytest.raises(ValueError, match="non-empty"):
        validate_sequence("")


def test_validate_rejects_bad_residues_with_names():
    with pytest.raises(ValueError, match="X"):
        validate_sequence("AXA")


def test_validate_lists_all_bad_residues():
    with pytest.raises(ValueError, match="BX"):
        validate_sequence("ABXA")


def test_validate_type_error():
    with pytest.raises(TypeError):
        validate_sequence(123)


def test_validate_custom_name_in_message():
    with pytest.raises(ValueError, match="myseq"):
        validate_sequence("", name="myseq")
