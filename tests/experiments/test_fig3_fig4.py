"""Tests for the Figures 3-4 driver (thread scaling)."""

import pytest

from repro.experiments.fig3_fig4_thread_scaling import (
    PERFORMANCE_SEQUENCES,
    THREAD_COUNTS,
    run_fig3_fig4,
)


@pytest.fixture(scope="module")
def result():
    return run_fig3_fig4(profile="tiny", seed=0)


def test_all_five_sequences_reported(result):
    assert set(result.data["runtimes"]) == set(PERFORMANCE_SEQUENCES)
    for name in PERFORMANCE_SEQUENCES:
        assert len(result.data["runtimes"][name]) == len(THREAD_COUNTS)


def test_runtime_decreases_with_threads(result):
    for name, runtimes in result.data["runtimes"].items():
        assert all(b < a for a, b in zip(runtimes, runtimes[1:])), name


def test_difficulty_order_matches_paper_listing(result):
    """The paper lists YPL108W easiest ... YHR214C-B hardest; single-thread
    runtimes must be ordered accordingly."""
    t1 = [result.data["runtimes"][n][0] for n in PERFORMANCE_SEQUENCES]
    assert t1 == sorted(t1)


def test_linear_speedup_to_16_threads(result):
    idx16 = THREAD_COUNTS.index(16)
    for name, speedups in result.data["speedups"].items():
        assert speedups[idx16] == pytest.approx(16.0, rel=0.05), name


def test_sublinear_but_improving_to_64(result):
    idx32 = THREAD_COUNTS.index(32)
    for name, speedups in result.data["speedups"].items():
        s = speedups
        assert s[-1] > s[idx32]  # still improving past 32
        assert s[-1] < 48  # far from linear at 64


def test_hardest_single_thread_calibration(result):
    hardest = result.data["runtimes"]["YHR214C-B"][0]
    # Calibrated near the paper's ~47000 s plus fixed overhead.
    assert 46000 < hardest < 48000


def test_artifacts_present(result):
    assert "fig3: runtime (s)" in result.artifacts
    assert "fig4: speedup" in result.artifacts
    assert "fig4: speedup plot" in result.artifacts


def test_deterministic():
    a = run_fig3_fig4(profile="tiny", seed=0)
    b = run_fig3_fig4(profile="tiny", seed=0)
    assert a.data["runtimes"] == b.data["runtimes"]
