"""Tests for the Figure 2 driver."""

from repro.experiments.fig2_fitness_heatmap import run_fig2


def test_runs_and_reports():
    result = run_fig2(resolution=21)
    assert result.experiment_id == "fig2"
    assert "heatmap" in result.artifacts
    assert result.data["peak_value"] == 1.0
    assert result.data["monotone_in_target"]
    assert result.data["monotone_in_non_target"]


def test_render_includes_axes():
    text = run_fig2(resolution=11).render()
    assert "PIPE(seq, target)" in text
    assert "fig2" in text


def test_ignores_extra_kwargs():
    # Drivers accept the common (profile, seed) interface.
    run_fig2(profile="tiny", seed=3, resolution=11)
