"""Fast-configuration tests for the GA-based experiment drivers
(Tables 1-3, Figure 7, Tables 4-5 / Figures 8-10)."""

import pytest

from repro.experiments.fig7_learning_curves import run_fig7
from repro.experiments.tables1_3_param_tuning import run_param_tuning
from repro.experiments.tables4_5_wetlab import run_wetlab_validation


@pytest.fixture(scope="module")
def tuning():
    # One target, two parameter-set-relevant seeds, few generations: fast.
    return run_param_tuning(
        profile="tiny", seed=0, targets=("YAL054C",), seeds=(1, 2), generations=4
    )


class TestParamTuning:
    def test_table_rendered(self, tuning):
        assert "table1: target YAL054C" in tuning.artifacts
        text = tuning.artifacts["table1: target YAL054C"]
        assert "Set 1" in text and "Set 5" in text
        assert "Seed 1" in text and "Avg." in text

    def test_matrix_shape(self, tuning):
        matrix = tuning.data["fitness_tables"]["YAL054C"]
        assert len(matrix) == 5  # parameter sets
        assert len(matrix[0]) == 2  # seeds

    def test_fitness_values_valid(self, tuning):
        for row in tuning.data["fitness_tables"]["YAL054C"]:
            for v in row:
                assert 0.0 <= v <= 1.0

    def test_variability_stats_present(self, tuning):
        assert "std_across_parameter_sets" in tuning.data
        assert "std_across_seeds" in tuning.data
        assert tuning.data["best_parameter_set_per_target"]["YAL054C"].startswith(
            "Set"
        )


@pytest.fixture(scope="module")
def fig7():
    return run_fig7(
        profile="tiny",
        seed=0,
        targets=("YBL051C",),
        min_generations=6,
        stall=3,
    )


class TestFig7:
    def test_curves_present(self, fig7):
        curves = fig7.data["YBL051C"]["curves"]
        assert set(curves) >= {"generation", "target", "max_non_target", "avg_non_target"}
        assert len(curves["target"]) >= 6

    def test_plot_has_threshold_line(self, fig7):
        plot = fig7.artifacts["learning curve: YBL051C"]
        assert "+threshold" in plot
        assert "Target" in plot

    def test_summary_table(self, fig7):
        assert "summary" in fig7.artifacts
        summary = fig7.data["YBL051C"]["summary"]
        assert summary["final_fitness"] >= summary["initial_fitness"]

    def test_scores_bounded(self, fig7):
        curves = fig7.data["YBL051C"]["curves"]
        for key in ("target", "max_non_target", "avg_non_target"):
            assert all(0.0 <= v <= 1.0 for v in curves[key])


@pytest.fixture(scope="module")
def wetlab():
    return run_wetlab_validation(
        profile="tiny",
        seed=0,
        runs=3,
        design_seeds=(1,),
        min_generations=6,
        stall=3,
    )


class TestWetlab:
    def test_both_targets_validated(self, wetlab):
        assert "YBL051C" in wetlab.data
        assert "YAL017W" in wetlab.data

    def test_comparison_structure_holds(self, wetlab):
        """Even with a minimal design budget the four-strain comparison
        structure must hold: controls equivalent, knockout most affected."""
        for target in ("YBL051C", "YAL017W"):
            averages = wetlab.data[target]["averages"]
            names = list(averages)
            wt, wt_plus, inhibitor, knockout = (averages[n] for n in names)
            assert abs(wt - wt_plus) < 8
            assert knockout < wt
            assert inhibitor <= wt + 2

    def test_spot_test_included(self, wetlab):
        assert "fig10: spot test (UV, 10x dilutions)" in wetlab.artifacts
        grid = wetlab.data["fig10_intensity"]
        assert len(grid) == 4  # dilutions

    def test_design_profile_recorded(self, wetlab):
        d = wetlab.data["YBL051C"]
        assert 0.0 <= d["target_score"] <= 1.0
        assert d["stressor"] == "cycloheximide"
