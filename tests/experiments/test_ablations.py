"""Tests for the ablation experiment driver."""

import pytest

from repro.experiments.ablations import run_ablations


@pytest.fixture(scope="module")
def result():
    return run_ablations(profile="tiny", seed=0)


def test_all_five_sections_present(result):
    assert set(result.artifacts) == {
        "dispatch: on-demand vs static",
        "similarity matrix: PAM120 vs BLOSUM62",
        "search algorithm at equal budget",
        "initial population seeding",
        "score cache",
    }


def test_dispatch_ondemand_never_loses(result):
    for row in result.data["dispatch"]:
        _, ondemand, static, ratio, imb_od, imb_st = row
        assert static >= ondemand
        assert ratio >= 1.0


def test_matrix_rows(result):
    rows = result.data["matrix"]
    names = {r[0] for r in rows}
    assert names == {"PAM120", "BLOSUM62"}
    for _, threshold, fitness in rows:
        assert threshold > 0
        assert 0.0 <= fitness <= 1.0


def test_baseline_rows_complete(result):
    rows = result.data["baselines"]
    assert {r[0] for r in rows} == {
        "InSiPS GA",
        "hill climbing",
        "random search",
    }
    # Equal budget: evaluation counts within one generation of each other.
    evals = [r[2] for r in rows]
    assert max(evals) - min(evals) <= max(evals) * 0.5


def test_seeding_shows_bias(result):
    rows = {r[0]: r for r in result.data["seeding"]}
    assert "random (paper)" in rows
    assert "natural fragments" in rows


def test_cache_saves_work(result):
    cache = result.data["cache"]
    assert cache["hits"] > 0
    assert cache["hits"] + cache["misses"] == cache["requests"]


def test_renders(result):
    text = result.render()
    assert "ablations" in text
    assert "PAM120" in text
