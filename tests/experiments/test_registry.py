"""Tests for the experiment registry and CLI."""

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment


def test_every_paper_artifact_has_a_driver():
    expected = (
        {f"fig{i}" for i in range(2, 11)}
        | {f"table{i}" for i in range(1, 6)}
        | {"ablations"}
    )
    assert set(EXPERIMENTS) == expected


def test_shared_drivers():
    assert EXPERIMENTS["fig3"] is EXPERIMENTS["fig4"]
    assert EXPERIMENTS["fig5"] is EXPERIMENTS["fig6"]
    assert EXPERIMENTS["table1"] is EXPERIMENTS["table3"]
    assert EXPERIMENTS["table4"] is EXPERIMENTS["fig8"]


def test_run_experiment_dispatch():
    result = run_experiment("FIG2", resolution=11)
    assert result.experiment_id == "fig2"


def test_run_experiment_unknown():
    with pytest.raises(KeyError, match="fig99"):
        run_experiment("fig99")


def test_cli_list(capsys):
    from repro.experiments.__main__ import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig2" in out
    assert "table5" in out


def test_cli_runs_fig2(capsys):
    from repro.experiments.__main__ import main

    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "fig2" in out
    assert "completed in" in out


def test_cli_rejects_unknown(capsys):
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main(["nope"])


def test_experiment_result_str():
    result = run_experiment("fig2", resolution=11)
    assert str(result) == result.render()
