"""Tests for the Figures 5-6 driver (worker-process scaling)."""

import pytest

from repro.experiments.fig5_fig6_worker_scaling import (
    PROCESS_COUNTS,
    run_fig5_fig6,
)


@pytest.fixture(scope="module")
def result():
    return run_fig5_fig6(seed=0)


def test_three_populations(result):
    assert set(result.data["runtimes"]) == {
        "generation-1",
        "generation-100",
        "generation-250",
    }


def test_runtime_decreases_with_processes(result):
    for label, times in result.data["runtimes"].items():
        assert all(b < a for a, b in zip(times, times[1:])), label


def test_baseline_magnitudes_near_paper(result):
    """Figure 5's y axis tops out at 4000 s; the three populations at 64
    processes should be ordered random < 100 gens < 250 gens and stay in
    the published range."""
    t64 = {k: v[0] for k, v in result.data["runtimes"].items()}
    assert t64["generation-1"] < t64["generation-100"] < t64["generation-250"]
    assert 500 < t64["generation-1"] < 2000
    assert 2500 < t64["generation-250"] < 4000


def test_speedup_shape_matches_fig6(result):
    """Near-linear at moderate scale, ~12x-of-16x at 1024 processes, with
    converged populations scaling best."""
    speedups = result.data["speedups"]
    last = {k: v[-1] for k, v in speedups.items()}
    assert last["generation-250"] > last["generation-100"] > last["generation-1"]
    assert 9.0 < last["generation-250"] < 14.0  # paper: ~12x
    # Near-linear at 256 processes (ideal 4.05x).
    idx256 = PROCESS_COUNTS.index(256)
    assert speedups["generation-250"][idx256] > 3.2


def test_utilisation_decreases_at_scale(result):
    for label, utils in result.data["utilisation"].items():
        assert utils[0] > utils[-1], label


def test_custom_process_counts():
    res = run_fig5_fig6(seed=1, process_counts=(64, 128), sequences=200)
    for times in res.data["runtimes"].values():
        assert len(times) == 2


def test_artifacts(result):
    assert "fig5: generation runtime (s)" in result.artifacts
    assert "fig6: speedup vs 64 processes" in result.artifacts
