"""Documentation hygiene: every module and public symbol is documented."""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if "__main__" not in name
]


@pytest.mark.parametrize("module_name", MODULES)
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_symbols_documented(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            # Symbols may be re-exported; the defining site must document.
            assert obj.__doc__ and obj.__doc__.strip(), f"{module_name}.{name}"


def test_repo_level_documents_exist():
    root = pathlib.Path(__file__).resolve().parents[1]
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/API.md"):
        path = root / doc
        assert path.exists(), doc
        assert path.stat().st_size > 500, doc


def test_design_md_lists_every_paper_artifact():
    root = pathlib.Path(__file__).resolve().parents[1]
    design = (root / "DESIGN.md").read_text()
    for artefact in (
        "FIG2",
        "FIG3",
        "FIG4",
        "FIG5",
        "FIG6",
        "FIG7",
        "FIG8",
        "FIG9",
        "FIG10",
        "TAB1",
        "TAB2",
        "TAB3",
        "TAB4",
        "TAB5",
    ):
        assert artefact in design, artefact


def test_experiments_md_covers_every_artifact():
    root = pathlib.Path(__file__).resolve().parents[1]
    text = (root / "EXPERIMENTS.md").read_text()
    for token in (
        "Figure 2",
        "Figures 3–4",
        "Figures 5–6",
        "Figure 7",
        "Tables 1–3",
        "Tables 4–5",
        "Figure 10",
    ):
        assert token in text, token
