"""Unit tests for the coalescer's pure planning rule.

``plan_fused_take`` is the whole fairness story of the fabric: one item
per client per round, in client-id order, until the dispatch budget is
spent.  Being a pure function, its bounds are checked here without any
threads or pools.
"""

import math

import pytest

from repro.fabric import plan_fused_take


def test_round_robin_split_even():
    assert plan_fused_take({0: 10, 1: 10}, 8) == {0: 4, 1: 4}


def test_small_client_never_starved():
    # A 10x-larger backlog still only gets an equal share per dispatch.
    assert plan_fused_take({0: 40, 1: 4}, 8) == {0: 4, 1: 4}


def test_leftover_budget_goes_round_robin():
    # 5 items across two clients, budget 8: everything is taken.
    assert plan_fused_take({0: 3, 1: 2}, 8) == {0: 3, 1: 2}


def test_uneven_budget_favours_lower_ids_by_at_most_one():
    take = plan_fused_take({0: 10, 1: 10, 2: 10}, 8)
    assert sum(take.values()) == 8
    assert max(take.values()) - min(take.values()) <= 1
    assert take[0] >= take[1] >= take[2]


def test_single_client_takes_whole_budget():
    assert plan_fused_take({7: 100}, 16) == {7: 16}


def test_empty_and_zero_pending():
    assert plan_fused_take({}, 8) == {}
    assert plan_fused_take({0: 0, 1: 3}, 8) == {1: 3}


def test_budget_validation():
    with pytest.raises(ValueError, match="max_items"):
        plan_fused_take({0: 1}, 0)


def test_fairness_bound_holds():
    # A client with k pending items is fully served within
    # ceil(k * n_clients / max_items) dispatches, whatever the other
    # backlogs look like.
    max_items = 8
    pending = {0: 5, 1: 100, 2: 37, 3: 64}
    k = pending[0]
    bound = math.ceil(k * len(pending) / max_items)
    dispatches = 0
    while pending.get(0):
        take = plan_fused_take(pending, max_items)
        dispatches += 1
        for cid, n in take.items():
            pending[cid] -= n
            if pending[cid] == 0:
                del pending[cid]
    assert dispatches <= bound
