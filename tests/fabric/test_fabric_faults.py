"""Fabric fairness and failure behaviour (the ``faults`` tier).

Two guarantees that only show up under contention or mid-flight client
loss: a 10x-larger campaign cannot delay a small client's generation
beyond the round-robin fairness bound, and a client crashing with a
submission in flight leaves the fabric serving every remaining client.
"""

import threading
import time

import numpy as np
import pytest

from repro.fabric import ClientClosedError, ScoringFabric
from repro.ga.fitness import SerialScoreProvider
from repro.parallel.worker import FaultPlan

pytestmark = pytest.mark.faults

LENGTH = 20


def _candidates(seed, n):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 20, size=LENGTH).astype(np.uint8) for _ in range(n)]


def test_large_client_cannot_starve_small_one(tiny_engine, tiny_problem):
    # One client submits a 10x-larger batch than the other, with a
    # per-item delay fault making service time dominate.  Round-robin
    # interleaving must finish the small batch in the first couple of
    # fused dispatches — long before the large one.
    target, non_targets = tiny_problem
    small_items, big_items, max_items = 4, 40, 8
    done: dict[str, float] = {}
    with ScoringFabric(
        tiny_engine,
        num_workers=1,
        max_items=max_items,
        max_wait_ms=500.0,
        faults=FaultPlan(delay=0.02),
    ) as fabric:
        small = fabric.client(target, non_targets)
        big = fabric.client(target, non_targets)

        def run(name, client, items):
            client.scores(_candidates(hash(name) % 1000, items))
            done[name] = time.monotonic()

        start = time.monotonic()
        threads = [
            threading.Thread(target=run, args=("small", small, small_items)),
            threading.Thread(target=run, args=("big", big, big_items)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = fabric.fabric_stats()
    t_small = done["small"] - start
    t_big = done["big"] - start
    # Fairness bound: the small batch rides in the first dispatch the
    # coalescer plans after both are pending (ceil(4 * 2 / 8) = 1), so
    # it must finish well before the large one's ~6 dispatches; the
    # factor is generous against scheduler noise.
    assert t_small < t_big * 0.6, (t_small, t_big)
    assert stats["fused_batches"] >= (small_items + big_items) // max_items


def test_client_crash_mid_batch_leaves_fabric_serving(
    tiny_engine, tiny_problem, rng
):
    # Client B's submission sits pending (the coalescing window is held
    # open by idle client A); closing B mid-flight must abandon exactly
    # B's items, release B's waiter with ClientClosedError, and leave A
    # fully served and bit-exact.
    target, non_targets = tiny_problem
    arrays = _candidates(99, 4)
    ref = SerialScoreProvider(tiny_engine, target, non_targets).scores(
        [a.copy() for a in arrays]
    )
    with ScoringFabric(
        tiny_engine, num_workers=1, max_items=64, max_wait_ms=10_000.0
    ) as fabric:
        client_a = fabric.client(target, non_targets)
        client_b = fabric.client(target, non_targets)

        b_error: list[BaseException] = []

        def run_b():
            try:
                client_b.scores(_candidates(7, 4))
            except BaseException as exc:  # noqa: BLE001 - asserted below
                b_error.append(exc)

        thread = threading.Thread(target=run_b)
        thread.start()
        # Wait until B's submission is pending in the coalescer: with A
        # idle and the window at 10 s, it cannot flush on its own.
        deadline = time.monotonic() + 30.0
        while not fabric._inbox.empty() and time.monotonic() < deadline:
            time.sleep(0.01)
        time.sleep(0.05)
        # B's 4 items are now held in the coalescer and counted pending.
        deadline = time.monotonic() + 30.0
        while (
            fabric.fabric_stats()["pending"] != 4
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert fabric.fabric_stats()["pending"] == 4
        client_b.close()  # the crash: abandons B's pending submission
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert b_error and isinstance(b_error[0], ClientClosedError)

        # A is served normally afterwards, bit-exact with the reference.
        got = client_a.scores([a.copy() for a in arrays])
        stats = fabric.fabric_stats()
    assert got == ref
    assert stats["abandoned_items"] == 4
    # Regression: abandoning B's submission must reconcile the pending
    # gauge — the abandoned items used to stay counted forever.
    assert stats["pending"] == 0
    assert stats["per_client"][client_b.client_id]["closed"]


def test_fabric_close_releases_inflight_waiters(tiny_engine, tiny_problem):
    # Closing the whole fabric with a submission parked in the coalescer
    # must fail that waiter promptly instead of wedging it.
    target, non_targets = tiny_problem
    fabric = ScoringFabric(
        tiny_engine, num_workers=1, max_items=64, max_wait_ms=10_000.0
    )
    client = fabric.client(target, non_targets)
    fabric.client(target, non_targets)  # idle second client holds the window
    errors: list[BaseException] = []

    def run():
        try:
            client.scores(_candidates(3, 2))
        except BaseException as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)

    thread = threading.Thread(target=run)
    thread.start()
    time.sleep(0.2)
    fabric.close()
    thread.join(timeout=30.0)
    assert not thread.is_alive()
    assert errors, "waiter was not released by fabric.close()"
