"""Scoring-fabric behaviour: bit-exactness, lifecycle, wiring.

The contract under test is the one API.md states: a GA campaign run
through a :class:`~repro.fabric.FabricClient` is bit-exact (scores,
history, RNG trajectory) with the same campaign on a dedicated
:class:`~repro.parallel.mp_backend.MultiprocessScoreProvider`, including
under delta re-scoring and an elastic resize — however its batches were
fused with other campaigns'.
"""

import json
import threading

import numpy as np
import pytest

from repro import GAParams, InSiPSEngine
from repro.fabric import ClientClosedError, FabricClient, FabricClosedError, ScoringFabric
from repro.parallel import LatencyTargetScaling, MultiprocessScoreProvider
from repro.parallel.worker import FaultPlan
from repro.providers import make_score_provider
from repro.telemetry import MetricsRegistry

POPULATION = 10
LENGTH = 20
SEED = 2015
GENERATIONS = 3


def _campaign(provider, generations=GENERATIONS):
    engine = InSiPSEngine(
        provider,
        GAParams(),
        population_size=POPULATION,
        candidate_length=LENGTH,
        seed=SEED,
    )
    return engine.run(generations)


def _payload(result):
    return json.dumps(result.history.to_payload())


@pytest.fixture(scope="module")
def problems(tiny_world, tiny_problem):
    target, non_targets = tiny_problem
    spare = [
        n for n in tiny_world.non_targets_for(target, limit=12)
        if n not in non_targets
    ]
    return [
        (target, non_targets),
        (spare[0], tiny_world.non_targets_for(spare[0], limit=8)),
        (spare[1], tiny_world.non_targets_for(spare[1], limit=8)),
    ]


@pytest.fixture(scope="module")
def dedicated_results(tiny_engine, problems):
    out = []
    for target, non_targets in problems:
        with MultiprocessScoreProvider(
            tiny_engine, target, non_targets, num_workers=1, timeout=120.0
        ) as provider:
            out.append(_campaign(provider))
    return out


def test_single_client_campaign_bit_exact(tiny_engine, problems, dedicated_results):
    target, non_targets = problems[0]
    with ScoringFabric(tiny_engine, num_workers=1) as fabric:
        result = _campaign(fabric.client(target, non_targets))
    ref = dedicated_results[0]
    assert result.best.sequence == ref.best.sequence
    assert _payload(result) == _payload(ref)


def test_concurrent_campaigns_bit_exact(tiny_engine, problems, dedicated_results):
    results = {}
    with ScoringFabric(tiny_engine, num_workers=1, max_items=16) as fabric:
        clients = [fabric.client(t, nts) for t, nts in problems]

        def run(i):
            results[i] = _campaign(clients[i])

        threads = [threading.Thread(target=run, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = fabric.fabric_stats()
    for i, ref in enumerate(dedicated_results):
        assert results[i].best.sequence == ref.best.sequence
        assert _payload(results[i]) == _payload(ref)
    assert stats["fused_batches"] > 0
    assert stats["fused_items"] == sum(
        stats["per_client"][c]["items"] for c in stats["per_client"]
    )


def test_campaign_uses_delta_rescoring(tiny_engine, problems):
    # The delta/provenance path must ride through the fabric exactly as
    # on a dedicated provider (sticky dispatch is keyed by sequence
    # bytes, not by problem).
    target, non_targets = problems[0]
    with ScoringFabric(tiny_engine, num_workers=1) as fabric:
        _campaign(fabric.client(target, non_targets))
        delta = fabric.provider.delta_stats()
    assert delta["hits"] > 0


def test_campaign_bit_exact_under_elastic_resize(
    tiny_engine, problems, dedicated_results
):
    target, non_targets = problems[0]
    with ScoringFabric(
        tiny_engine,
        num_workers=1,
        scaling=LatencyTargetScaling(1, 3, target_s=0.08),
        poll_interval=0.05,
        faults=FaultPlan(delay=0.03),  # inflate latency to force scale-up
    ) as fabric:
        result = _campaign(fabric.client(target, non_targets))
        stats = fabric.provider.elastic_stats()
    ref = dedicated_results[0]
    assert stats["scale_ups"] > 0
    assert result.best.sequence == ref.best.sequence
    assert _payload(result) == _payload(ref)


def test_direct_scores_match_dedicated(tiny_engine, problems, rng):
    target, non_targets = problems[0]
    arrays = [rng.integers(0, 20, size=LENGTH).astype(np.uint8) for _ in range(5)]
    with MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=1, timeout=120.0
    ) as dedicated:
        ref = dedicated.scores([a.copy() for a in arrays])
    with ScoringFabric(tiny_engine, num_workers=1) as fabric:
        client = fabric.client(target, non_targets)
        got = client.scores([a.copy() for a in arrays])
        again = client.scores([a.copy() for a in arrays])  # LRU path
    assert got == ref
    assert again == ref


def test_make_score_provider_fabric_backend(tiny_engine, problems):
    target, non_targets = problems[0]
    with ScoringFabric(tiny_engine, num_workers=1) as fabric:
        client = make_score_provider(
            fabric, target, non_targets, backend="fabric"
        )
        assert isinstance(client, FabricClient)
        assert client.target == target
        assert client.non_targets == list(non_targets)
        with pytest.raises(TypeError, match="needs a ScoringFabric"):
            make_score_provider(tiny_engine, target, non_targets, backend="fabric")
        with pytest.raises(ValueError, match="configured on the ScoringFabric"):
            make_score_provider(
                fabric, target, non_targets, backend="fabric", workers=2
            )


def test_client_close_is_final(tiny_engine, problems, rng):
    target, non_targets = problems[0]
    with ScoringFabric(tiny_engine, num_workers=1) as fabric:
        client = fabric.client(target, non_targets)
        arr = rng.integers(0, 20, size=LENGTH).astype(np.uint8)
        client.scores([arr])
        client.close()
        client.close()  # idempotent
        with pytest.raises(ClientClosedError):
            client.scores([arr])
        # the fabric keeps serving other clients
        other = fabric.client(target, non_targets)
        assert other.scores([arr.copy()])


def test_fabric_close_idempotent_and_final(tiny_engine, problems, rng):
    fabric = ScoringFabric(tiny_engine, num_workers=1)
    target, non_targets = problems[0]
    client = fabric.client(target, non_targets)
    client.scores([rng.integers(0, 20, size=LENGTH).astype(np.uint8)])
    fabric.close()
    fabric.close()
    with pytest.raises(FabricClosedError):
        fabric.client(target, non_targets)
    with pytest.raises((FabricClosedError, ClientClosedError)):
        client.scores([rng.integers(0, 20, size=LENGTH).astype(np.uint8)])


def test_fabric_validation(tiny_engine):
    with pytest.raises(ValueError, match="max_items"):
        ScoringFabric(tiny_engine, max_items=0)
    with pytest.raises(ValueError, match="max_wait_ms"):
        ScoringFabric(tiny_engine, max_wait_ms=-1.0)


def test_fabric_telemetry(tiny_engine, problems, rng):
    registry = MetricsRegistry()
    target, non_targets = problems[0]
    with ScoringFabric(tiny_engine, num_workers=1, telemetry=registry) as fabric:
        client = fabric.client(target, non_targets)
        assert registry.gauge("fabric.clients").value == 1
        arrays = [
            rng.integers(0, 20, size=LENGTH).astype(np.uint8) for _ in range(4)
        ]
        client.scores(arrays)
        stats = fabric.fabric_stats()
        client.close()
        assert registry.gauge("fabric.clients").value == 0
    assert registry.counter("fabric.fused_items").value == stats["fused_items"] == 4
    assert registry.counter("fabric.fused_batches").value == stats["fused_batches"]
    assert registry.counter("fabric.client.0.items").value == 4
    assert registry.histogram("fabric.queue_wait").count == 4
    assert stats["mean_fused_size"] > 0


def test_empty_batch(tiny_engine, problems):
    target, non_targets = problems[0]
    with ScoringFabric(tiny_engine, num_workers=1) as fabric:
        client = fabric.client(target, non_targets)
        assert client.scores([]) == []
