"""Hypothesis property tests: the batched similarity kernel and the
batched database/LRU entry points are bit-exact with the serial reference.

The batched kernel stacks a whole population (zero-padded, ``w - 1``
residues between sequences so no retained window row straddles two
candidates) and sweeps it in one chunked pass; the claim is bitwise
equality with per-sequence :class:`ChunkedNumpyKernel` sweeps, for any
population and any grouping limits.  `similarity_batch` additionally must
preserve the *sequential* delta semantics: a child batched together with
its parent still takes the delta route, and the result is identical to
calling `similarity_for` one sequence at a time.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.operators import mutate_with_provenance
from repro.ppi.database import PipeDatabase
from repro.ppi.delta import SimilarityLRU
from repro.ppi.graph import InteractionGraph
from repro.ppi.kernels import BatchedNumpyKernel, ChunkedNumpyKernel
from repro.sequences.encoding import decode
from repro.sequences.protein import Protein
from repro.substitution import PAM120

W = 3
THRESHOLD = 15.0


def _build_database():
    rng = np.random.default_rng(424242)
    proteins = [
        Protein(
            f"P{i}",
            decode(rng.integers(0, 20, size=int(rng.integers(8, 24))).astype(np.uint8)),
        )
        for i in range(6)
    ]
    proteins.append(Protein("SHORT", "AC"))
    edges = [("P0", "P1"), ("P1", "P2"), ("P2", "P3"), ("P4", "P5")]
    return PipeDatabase(
        InteractionGraph(proteins, edges), PAM120, W, THRESHOLD, kernel="chunked"
    )


# Read-only after construction, so one shared instance serves every example.
DATABASE = _build_database()

populations = st.lists(
    st.lists(st.integers(min_value=0, max_value=19), min_size=1, max_size=30).map(
        lambda xs: np.array(xs, dtype=np.uint8)
    ),
    min_size=1,
    max_size=12,
)


@settings(deadline=None, max_examples=30)
@given(populations)
def test_batched_kernel_bit_exact(population):
    chunked = ChunkedNumpyKernel()
    batched = BatchedNumpyKernel()
    swept = [s for s in population if s.size >= W]
    expected = [chunked.sweep(DATABASE, s) for s in swept]
    got = batched.sweep_batch(DATABASE, swept)
    for e, g in zip(expected, got):
        assert np.array_equal(e, g)


@settings(deadline=None, max_examples=20)
@given(
    populations,
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=64, max_value=4096),
)
def test_batched_kernel_grouping_invariant(population, residues, elements):
    """Any (batch_residues, batch_elements) split yields identical counts —
    grouping is a wall-clock decision, never a numerical one."""
    swept = [s for s in population if s.size >= W]
    reference = BatchedNumpyKernel().sweep_batch(DATABASE, swept)
    limited = BatchedNumpyKernel(
        batch_residues=residues, batch_elements=elements
    ).sweep_batch(DATABASE, swept)
    for r, l in zip(reference, limited):
        assert np.array_equal(r, l)


@settings(deadline=None, max_examples=25)
@given(populations)
def test_database_batch_bit_exact(population):
    singles = [DATABASE.sequence_similarity(s) for s in population]
    batch = DATABASE.sequence_similarity_batch(population)
    for a, b in zip(singles, batch):
        assert a.num_windows == b.num_windows
        assert (a.counts != b.counts).nnz == 0


@settings(deadline=None, max_examples=15)
@given(
    st.lists(st.integers(min_value=0, max_value=19), min_size=6, max_size=30).map(
        lambda xs: np.array(xs, dtype=np.uint8)
    ),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=1, max_value=4),
)
def test_similarity_batch_matches_sequential_deltas(parent, rng_seed, depth):
    """A mutation chain scored through `similarity_batch` — parent and all
    descendants in ONE batch — equals the one-at-a-time `similarity_for`
    route, and the descendants still take the delta path (hit=True)."""
    rng = np.random.default_rng(rng_seed)
    children = [(parent, None)]
    current = parent
    for _ in range(depth):
        current, prov = mutate_with_provenance(current, 0.2, rng)
        children.append((current, prov))
    seqs = [c for c, _ in children]
    provs = [p for _, p in children]

    sequential = SimilarityLRU(16)
    expected = [
        sequential.similarity_for(DATABASE, c, p) for c, p in children
    ]
    batched = SimilarityLRU(16)
    got = batched.similarity_batch(DATABASE, seqs, provs)

    assert len(got) == len(expected)
    for (e_sim, e_stats), (g_sim, g_stats) in zip(expected, got):
        assert e_sim.num_windows == g_sim.num_windows
        assert (e_sim.counts != g_sim.counts).nnz == 0
        if e_stats is not None:
            assert g_stats is not None
            assert e_stats.hit == g_stats.hit
            assert e_stats.rows_rescored == g_stats.rows_rescored
            assert e_stats.rows_total == g_stats.rows_total


@settings(deadline=None, max_examples=10)
@given(
    st.lists(st.integers(min_value=0, max_value=19), min_size=8, max_size=24).map(
        lambda xs: np.array(xs, dtype=np.uint8)
    )
)
def test_similarity_batch_duplicates_resolve_as_hits(seq):
    """Duplicates of a pending sequence inside one batch cost one sweep;
    with provenance attached they report as cache hits, matching the
    sequential loop (the copy operation re-submits identical bytes)."""
    from repro.ppi.delta import copy_provenance

    lru = SimilarityLRU(8)
    results = lru.similarity_batch(
        DATABASE,
        [seq, seq.copy(), seq.copy()],
        [None, copy_provenance(seq), copy_provenance(seq)],
    )
    reference = DATABASE.sequence_similarity(seq)
    for sim, _ in results:
        assert (sim.counts != reference.counts).nnz == 0
    assert results[0][1] is None  # no provenance, nothing to account
    for _, dup_stats in results[1:]:
        assert dup_stats is not None and dup_stats.hit
        assert dup_stats.rows_rescored == 0
