"""Hypothesis property tests for reverse translation and properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constants import AMINO_ACIDS
from repro.sequences.codon import gc_content, reverse_translate, translate
from repro.sequences.properties import (
    gravy,
    hydropathy_profile,
    molecular_weight,
    net_charge,
)

proteins = st.text(alphabet=st.sampled_from(AMINO_ACIDS), min_size=1, max_size=120)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(proteins, seeds, st.sampled_from(["optimal", "sampled"]))
def test_reverse_translate_roundtrip(protein, seed, mode):
    dna = reverse_translate(
        protein, mode=mode, seed=seed, add_start=False, add_stop=False
    )
    assert translate(dna) == protein
    assert len(dna) == 3 * len(protein)
    assert set(dna) <= set("ACGT")


@given(proteins, seeds)
def test_reverse_translate_with_flanks(protein, seed):
    dna = reverse_translate(protein, mode="sampled", seed=seed)
    assert dna.startswith("ATG")
    translated = translate(dna)
    assert translated == protein or translated == "M" + protein


@given(proteins, seeds)
def test_gc_content_bounded(protein, seed):
    dna = reverse_translate(protein, mode="sampled", seed=seed)
    assert 0.0 <= gc_content(dna) <= 1.0


@given(proteins)
def test_molecular_weight_additive_and_positive(protein):
    w = molecular_weight(protein)
    assert w > 0
    doubled = molecular_weight(protein + protein)
    # Two chains joined lose one water relative to two separate chains.
    assert doubled == pytest.approx(2 * w - 18.02, abs=0.5)


@given(proteins)
def test_gravy_bounded_by_extremes(protein):
    g = gravy(protein)
    assert -4.5 <= g <= 4.5


@given(proteins, st.integers(min_value=1, max_value=15))
def test_hydropathy_profile_bounds(protein, window):
    profile = hydropathy_profile(protein, window=window)
    expected = max(0, len(protein) - window + 1)
    assert profile.size == expected
    if profile.size:
        assert profile.max() <= 4.5 + 1e-9
        assert profile.min() >= -4.5 - 1e-9


@given(proteins)
def test_net_charge_antisymmetry(protein):
    swapped = (
        protein.replace("K", "#")
        .replace("R", "%")
        .replace("D", "K")
        .replace("E", "R")
        .replace("#", "D")
        .replace("%", "E")
    )
    # Swapping K/R with D/E flips the charge contribution of those
    # residues; histidine's +0.1 term is unaffected.
    base = net_charge(protein)
    flipped = net_charge(swapped)
    h_term = 0.1 * protein.count("H")
    assert flipped - h_term == pytest.approx(-(base - h_term), abs=1e-9)
