"""Hypothesis property tests for data structures: graph, scheduler,
persistence, diversity, binding sites."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.fitness import ScoreSet
from repro.ga.population import Individual, Population
from repro.ga.diversity import mean_pairwise_hamming, positional_entropy
from repro.parallel.messages import WorkItem, WorkResult
from repro.parallel.scheduler import OnDemandScheduler
from repro.ppi.graph import InteractionGraph
from repro.ppi.sites import predict_binding_sites
from repro.sequences.protein import Protein

# --- interaction graph -------------------------------------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=40
)


@given(edge_lists)
def test_graph_edge_invariants(pairs):
    proteins = [Protein(f"P{i}", "MKTLLVAC") for i in range(10)]
    graph = InteractionGraph(
        proteins, [(f"P{a}", f"P{b}") for a, b in pairs]
    )
    # Symmetry and degree/edge accounting.
    adj = graph.adjacency_matrix().toarray()
    assert np.array_equal(adj, adj.T)
    self_loops = int(np.trace(adj))
    assert adj.sum() == 2 * graph.num_edges - self_loops
    assert len(graph.edges()) == graph.num_edges
    for a, b in graph.edges():
        assert graph.has_edge(a, b) and graph.has_edge(b, a)


# --- scheduler ---------------------------------------------------------------


@settings(max_examples=50)
@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=1, max_value=8),
    st.randoms(use_true_random=False),
)
def test_ondemand_scheduler_complete_and_ordered(n_items, n_workers, pyrandom):
    items = [WorkItem(i, bytes([i % 250 + 1])) for i in range(n_items)]
    sched = OnDemandScheduler(items)
    outstanding = []
    while True:
        w = pyrandom.randrange(n_workers)
        item = sched.next_for(w)
        if item is None:
            break
        outstanding.append((item, w))
        # Randomly complete some outstanding work.
        while outstanding and pyrandom.random() < 0.5:
            done, worker = outstanding.pop(pyrandom.randrange(len(outstanding)))
            sched.record(WorkResult(done.sequence_id, worker, ScoreSet(0.5, ())))
    for done, worker in outstanding:
        sched.record(WorkResult(done.sequence_id, worker, ScoreSet(0.5, ())))
    assert sched.done
    results = sched.results_in_order()
    assert [r.sequence_id for r in results] == list(range(n_items))


# --- diversity ---------------------------------------------------------------

populations = st.lists(
    st.lists(st.integers(0, 19), min_size=6, max_size=6),
    min_size=2,
    max_size=25,
)


@given(populations)
def test_diversity_bounds(rows):
    pop = Population([Individual(np.array(r, dtype=np.uint8)) for r in rows])
    h = mean_pairwise_hamming(pop)
    assert 0.0 <= h <= 1.0
    entropy = positional_entropy(pop)
    assert np.all(entropy >= 0.0)
    assert np.all(entropy <= np.log2(20) + 1e-9)


@given(populations)
def test_duplicating_population_preserves_hamming(rows):
    pop = Population([Individual(np.array(r, dtype=np.uint8)) for r in rows])
    doubled = Population(
        [Individual(np.array(r, dtype=np.uint8)) for r in rows + rows]
    )
    # Doubling every member leaves the pairwise-distance *distribution*
    # dominated by the same values; mean changes only through self-pairs.
    a = mean_pairwise_hamming(pop, max_pairs=10**9)
    b = mean_pairwise_hamming(doubled, max_pairs=10**9)
    assert b <= a + 1e-9


# --- binding sites -----------------------------------------------------------

@st.composite
def _matrices(draw):
    n = draw(st.integers(min_value=4, max_value=12))
    m = draw(st.integers(min_value=4, max_value=12))
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0),
            min_size=n * m,
            max_size=n * m,
        )
    )
    return np.array(values).reshape(n, m)


@settings(max_examples=40)
@given(_matrices(), st.integers(min_value=1, max_value=5))
def test_sites_within_bounds(h, w):
    sites = predict_binding_sites(h, w, max_sites=4)
    for s in sites:
        assert 0 <= s.a_start < s.a_end <= h.shape[0] - 1 + w
        assert 0 <= s.b_start < s.b_end <= h.shape[1] - 1 + w
        assert s.total_evidence >= s.peak_evidence >= 0
    # Strongest-first ordering.
    peaks = [s.peak_evidence for s in sites]
    assert peaks == sorted(peaks, reverse=True)
