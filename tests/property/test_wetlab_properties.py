"""Hypothesis property tests for the wet-lab substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wetlab.assays import STANDARD_ASSAYS, StressAssay
from repro.wetlab.binding import BindingModel, InhibitionProfile
from repro.wetlab.strains import Strain, make_standard_strains

scores = st.floats(min_value=0.0, max_value=1.0)
activities = st.floats(min_value=0.0, max_value=1.0)


@given(scores)
def test_occupancy_bounds(score):
    model = BindingModel()
    occ = model.occupancy(score)
    assert 0.0 <= occ < 1.0
    assert 0.0 < model.residual_activity(score) <= 1.0


@given(scores, scores)
def test_occupancy_monotone(a, b):
    model = BindingModel()
    lo, hi = sorted([a, b])
    assert model.occupancy(lo) <= model.occupancy(hi)
    assert model.residual_activity(lo) >= model.residual_activity(hi)


@given(activities, activities, st.sampled_from(sorted(STANDARD_ASSAYS)))
def test_survival_monotone_in_activity(a, b, stressor):
    assay = STANDARD_ASSAYS[stressor]
    lo, hi = sorted([a, b])
    s_lo = assay.survival_probability(Strain("S", lo))
    s_hi = assay.survival_probability(Strain("S", hi))
    assert s_lo <= s_hi + 1e-12


@given(activities, st.sampled_from(sorted(STANDARD_ASSAYS)))
def test_survival_bracketed_by_controls(activity, stressor):
    assay = STANDARD_ASSAYS[stressor]
    s = assay.survival_probability(Strain("S", activity))
    assert assay.knockout_survival - 1e-12 <= s <= assay.wt_survival + 1e-12


@settings(max_examples=40)
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_strain_construction_total(target, max_off, avg_off):
    profile = InhibitionProfile("T", target, max_off, avg_off)
    strains = make_standard_strains(profile)
    names = [s.name for s in strains]
    assert names[0] == "WT" and names[-1] == "ΔT"
    wt, wt_plus, inhibitor, knockout = strains
    # The inhibitor strain always sits between knockout and wild type.
    assert 0.0 <= inhibitor.target_activity <= 1.0
    assert knockout.target_activity == 0.0
    assert wt.target_activity == 1.0
    # Stronger binding ⇒ never more residual activity than the controls.
    assert inhibitor.target_activity <= wt.target_activity


@given(
    st.floats(min_value=0.05, max_value=0.95),
    st.floats(min_value=0.0, max_value=0.9),
)
def test_assay_validation_invariant(wt_survival, ko_fraction):
    ko = wt_survival * ko_fraction
    assay = StressAssay("x", "s", "d", wt_survival=wt_survival, knockout_survival=ko)
    assert assay.survival_probability(Strain("A", 1.0)) == pytest.approx(wt_survival)
    assert assay.survival_probability(Strain("A", 0.0)) == pytest.approx(ko)
