"""Hypothesis property tests: delta re-scoring is bit-exact with the
full sweep over arbitrary chains of GA operations.

The delta path's whole claim is *exactness*, not approximation: for any
sequence of copy / mutate / crossover steps, patching parent rows and
re-sweeping only the dirty windows must reproduce the full-sweep counts
(and therefore the PIPE scores) bit for bit, whatever the LRU happens to
contain.  These tests drive random operation chains through a shared
:class:`~repro.ppi.delta.SimilarityLRU` and compare every intermediate
against a from-scratch :meth:`~repro.ppi.database.PipeDatabase.sequence_similarity`.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.operators import (
    crossover_with_provenance,
    mutate_with_provenance,
    point_copy_with_provenance,
)
from repro.ppi.database import PipeDatabase
from repro.ppi.delta import SimilarityLRU, mutation_provenance
from repro.ppi.graph import InteractionGraph
from repro.sequences.encoding import decode
from repro.sequences.protein import Protein
from repro.substitution import PAM120

W = 3
THRESHOLD = 15.0


def _build_database():
    rng = np.random.default_rng(2024)
    proteins = [
        Protein(
            f"P{i}",
            decode(rng.integers(0, 20, size=int(rng.integers(8, 24))).astype(np.uint8)),
        )
        for i in range(5)
    ]
    edges = [("P0", "P1"), ("P1", "P2"), ("P2", "P3"), ("P3", "P4"), ("P0", "P0")]
    return PipeDatabase(InteractionGraph(proteins, edges), PAM120, W, THRESHOLD)


# Read-only after construction, so one shared instance serves every example.
DATABASE = _build_database()


sequences = st.lists(
    st.integers(min_value=0, max_value=19), min_size=4, max_size=30
).map(lambda xs: np.array(xs, dtype=np.uint8))

loci_fractions = st.lists(
    st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    min_size=0,
    max_size=5,
)


def _assert_bit_exact(database, lru, child, provenance):
    similarity, stats = lru.similarity_for(database, child, provenance)
    expected = database.sequence_similarity(child)
    assert similarity.num_windows == expected.num_windows
    assert np.array_equal(similarity.counts.toarray(), expected.counts.toarray())
    return stats


@settings(deadline=None, max_examples=30)
@given(sequences, loci_fractions)
def test_mutation_delta_bit_exact(parent, fractions):
    database = DATABASE
    lru = SimilarityLRU(8)
    lru.put(parent.tobytes(), database.sequence_similarity(parent))
    loci = sorted({int(f * parent.size) for f in fractions})
    child = parent.copy()
    for locus in loci:
        child[locus] = (int(child[locus]) + 1) % 20
    prov = mutation_provenance(parent, loci)
    stats = _assert_bit_exact(database, lru, child, prov)
    if loci and child.tobytes() != parent.tobytes():
        if prov.segments:
            assert stats.hit
            assert stats.rows_rescored <= min(stats.rows_total, W * len(loci))
        else:
            # Every residue mutated: no clean run survives, so the only
            # correct route is the full-sweep fallback.
            assert not stats.hit
            assert stats.rows_rescored == stats.rows_total


@settings(deadline=None, max_examples=30)
@given(sequences, sequences, st.floats(min_value=0.0, max_value=1.0, exclude_max=True))
def test_crossover_delta_bit_exact(a, b, frac):
    database = DATABASE
    lru = SimilarityLRU(8)
    lru.put(a.tobytes(), database.sequence_similarity(a))
    lru.put(b.tobytes(), database.sequence_similarity(b))
    cut_a = min(a.size - 1, max(1, int(frac * a.size)))
    cut_b = min(b.size - 1, max(1, int(frac * b.size)))
    from repro.ppi.delta import crossover_provenance

    child1 = np.concatenate([a[:cut_a], b[cut_b:]])
    child2 = np.concatenate([b[:cut_b], a[cut_a:]])
    p1, p2 = crossover_provenance(a, b, cut_a, cut_b)
    for child, prov in ((child1, p1), (child2, p2)):
        stats = _assert_bit_exact(database, lru, child, prov)
        assert stats.hit
        # Only the windows straddling the cut can be dirty.
        assert stats.rows_rescored <= W - 1


@settings(deadline=None, max_examples=15)
@given(
    sequences,
    sequences,
    st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=8),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_operation_chain_delta_bit_exact(seed_a, seed_b, ops, rng_seed):
    """A random mutate/crossover/copy chain stays exact at every step,
    including when the LRU evicts parents mid-chain (forced fallbacks)."""
    database = DATABASE
    rng = np.random.default_rng(rng_seed)
    lru = SimilarityLRU(4)  # small on purpose: eviction-driven fallbacks
    pool = [seed_a, seed_b]
    for s in pool:
        lru.similarity_for(database, s, None)
    for op in ops:
        if op == 0:
            parent = pool[int(rng.integers(len(pool)))]
            child, prov = point_copy_with_provenance(parent)
            children = [(child, prov)]
        elif op == 1:
            parent = pool[int(rng.integers(len(pool)))]
            child, prov = mutate_with_provenance(parent, 0.1, rng)
            children = [(child, prov)]
        else:
            i, j = rng.integers(len(pool)), rng.integers(len(pool))
            pair = crossover_with_provenance(
                pool[int(i)], pool[int(j)], 0.1, rng
            )
            children = list(pair)
        for child, prov in children:
            _assert_bit_exact(database, lru, child, prov)
            pool.append(np.asarray(child))
        pool = pool[-6:]  # bound the pool like a GA population would


@settings(deadline=None, max_examples=15)
@given(sequences, st.floats(min_value=0.0, max_value=0.3))
def test_delta_scores_equal_full_scores(parent, p_mutate):
    """End to end: PIPE scores via the delta route == full-sweep scores."""
    from repro.ppi.pipe import PipeConfig, PipeEngine

    database = DATABASE
    engine = PipeEngine(
        database, PipeConfig(window_size=W, similarity_threshold=THRESHOLD)
    )
    rng = np.random.default_rng(7)
    lru = SimilarityLRU(8)
    lru.similarity_for(database, parent, None)
    child, prov = mutate_with_provenance(parent, p_mutate, rng)
    similarity, _ = lru.similarity_for(database, child, prov)
    names = ["P0", "P2"]
    via_delta = engine.score_against(child, names, similarity=similarity)
    from_scratch = engine.score_against(child, names)
    assert via_delta == from_scratch
