"""Hypothesis property tests for PIPE kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ppi.similarity import (
    exact_threshold,
    random_match_score_pmf,
    windowed_diagonal_sums,
    window_similarity_scores,
)
from repro.ppi.windows import num_windows
from repro.substitution import PAM120

encoded = st.lists(
    st.integers(min_value=0, max_value=19), min_size=1, max_size=40
).map(lambda xs: np.array(xs, dtype=np.uint8))
windows = st.integers(min_value=1, max_value=8)


@given(st.integers(min_value=0, max_value=10_000), windows)
def test_num_windows_bounds(length, w):
    n = num_windows(length, w)
    assert 0 <= n <= length
    if length >= w:
        assert n == length - w + 1


@given(encoded, encoded, windows)
def test_window_scores_shape(a, b, w):
    out = window_similarity_scores(a, b, w, PAM120)
    assert out.shape == (num_windows(a.size, w), num_windows(b.size, w))


@given(encoded, encoded, windows)
def test_window_scores_symmetry(a, b, w):
    ab = window_similarity_scores(a, b, w, PAM120)
    ba = window_similarity_scores(b, a, w, PAM120)
    assert np.allclose(ab, ba.T)


@given(encoded, windows)
def test_self_diagonal_dominates(a, w):
    scores = window_similarity_scores(a, a, w, PAM120)
    n = scores.shape[0]
    for i in range(n):
        assert scores[i, i] == scores[i].max()


@given(encoded, encoded, windows)
def test_window_scores_bounded_by_extremes(a, b, w):
    out = window_similarity_scores(a, b, w, PAM120)
    if out.size:
        assert out.max() <= w * PAM120.max_score
        assert out.min() >= w * PAM120.min_score


@settings(deadline=None, max_examples=20)
@given(windows)
def test_pmf_mean_matches_analytic(w):
    support, pmf = random_match_score_pmf(PAM120, w)
    from repro.constants import YEAST_AA_FREQUENCIES as f

    per_residue_mean = float(f @ PAM120.scores @ f)
    mean = float((support * pmf).sum())
    assert mean == pytest.approx(w * per_residue_mean, rel=1e-9, abs=1e-9)


@settings(deadline=None, max_examples=15)
@given(
    windows,
    st.floats(min_value=1e-8, max_value=0.5, allow_nan=False),
)
def test_exact_threshold_is_tightest(w, rate):
    support, pmf = random_match_score_pmf(PAM120, w)
    thr = exact_threshold(PAM120, w, match_rate=rate)
    tail = pmf[support >= thr].sum()
    if thr == support[-1] and tail > rate:
        # Unachievable rate: even demanding the maximum score exceeds it;
        # the implementation documents falling back to the maximum.
        return
    assert tail <= rate
    if thr > support[0]:
        # One step looser would violate the rate (tightness).
        looser = pmf[support >= thr - 1].sum()
        assert looser > rate


@given(
    st.lists(
        st.lists(
            st.floats(min_value=-20, max_value=20, allow_nan=False),
            min_size=1,
            max_size=15,
        ),
        min_size=1,
        max_size=15,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1),
    windows,
)
def test_diagonal_sums_linear_in_input(rows, w):
    s = np.array(rows)
    out2 = windowed_diagonal_sums(2.0 * s, w)
    out = windowed_diagonal_sums(s, w)
    assert np.allclose(out2, 2.0 * out)
