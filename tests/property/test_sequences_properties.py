"""Hypothesis property tests for the sequence substrate."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.constants import AMINO_ACIDS
from repro.sequences.alphabet import is_valid_sequence, validate_sequence
from repro.sequences.encoding import decode, encode

residue = st.sampled_from(AMINO_ACIDS)
sequences = st.text(alphabet=residue, min_size=1, max_size=200)
index_arrays = st.lists(
    st.integers(min_value=0, max_value=19), min_size=1, max_size=200
).map(lambda xs: np.array(xs, dtype=np.uint8))


@given(sequences)
def test_encode_decode_roundtrip(seq):
    assert decode(encode(seq)) == seq


@given(index_arrays)
def test_decode_encode_roundtrip(arr):
    assert np.array_equal(encode(decode(arr)), arr)


@given(sequences)
def test_encode_range(seq):
    enc = encode(seq)
    assert enc.dtype == np.uint8
    assert enc.min() >= 0
    assert enc.max() < 20
    assert enc.size == len(seq)


@given(sequences)
def test_valid_sequences_validate(seq):
    assert is_valid_sequence(seq)
    assert validate_sequence(seq) == seq


@given(sequences)
def test_case_insensitivity(seq):
    assert np.array_equal(encode(seq.lower()), encode(seq))


@given(st.text(min_size=1, max_size=50))
def test_validator_and_predicate_agree(text):
    upper = text.upper()
    if is_valid_sequence(upper):
        assert validate_sequence(text) == upper
    else:
        import pytest

        with pytest.raises((ValueError, TypeError)):
            validate_sequence(text)
