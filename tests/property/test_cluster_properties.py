"""Hypothesis property tests for the cluster simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.bgq import BGQClusterConfig, simulate_generation
from repro.cluster.simulator import Simulator
from repro.cluster.throughput import MemoryBoundThroughput
from repro.cluster.workload import SequenceWorkload


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
def test_simulator_time_monotone(delays):
    sim = Simulator()
    times = []
    for d in delays:
        sim.schedule(d, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert sim.now == pytest.approx(max(delays))


workloads = st.lists(
    st.floats(min_value=0.5, max_value=200.0), min_size=1, max_size=60
).map(
    lambda ws: [
        SequenceWorkload(f"s{i}", w * 0.4, w * 0.6, fixed_overhead=0.05)
        for i, w in enumerate(ws)
    ]
)


@settings(deadline=None, max_examples=25)
@given(workloads, st.integers(min_value=2, max_value=40))
def test_generation_time_bounds(wl, procs):
    """Makespan is at least the critical path (one worker doing the biggest
    item, or all work split perfectly) and at most one worker doing
    everything."""
    cfg = BGQClusterConfig(
        request_service_time=0.0, network_latency=0.0, master_work_per_sequence=0.0
    )
    res = simulate_generation(wl, procs, cfg)
    node = MemoryBoundThroughput()
    per_item = [
        w.fixed_overhead + w.parallel_work / node.throughput(64) for w in wl
    ]
    workers = procs - 1
    lower = max(max(per_item), sum(per_item) / workers)
    upper = sum(per_item)
    assert res.total_time >= lower - 1e-9
    assert res.total_time <= upper + 1e-9


@settings(deadline=None, max_examples=25)
@given(workloads)
def test_busy_time_conserved(wl):
    cfg = BGQClusterConfig(
        request_service_time=0.0, network_latency=0.0, master_work_per_sequence=0.0
    )
    res = simulate_generation(wl, 5, cfg)
    node = MemoryBoundThroughput()
    expected = sum(
        w.fixed_overhead + w.parallel_work / node.throughput(64) for w in wl
    )
    assert res.worker_busy.sum() == pytest.approx(expected)


@settings(deadline=None, max_examples=20)
@given(
    workloads,
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=11, max_value=60),
)
def test_more_workers_never_slower(wl, few, many):
    cfg = BGQClusterConfig(request_service_time=0.0, network_latency=0.0)
    t_few = simulate_generation(wl, few, cfg).total_time
    t_many = simulate_generation(wl, many, cfg).total_time
    assert t_many <= t_few + 1e-9


@given(st.integers(min_value=1, max_value=64))
def test_throughput_bounds(threads):
    node = MemoryBoundThroughput()
    t = node.throughput(threads)
    assert 1.0 <= t <= threads
    assert t <= node.throughput(64)
