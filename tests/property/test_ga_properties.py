"""Hypothesis property tests for GA operators and selection."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ga.fitness import ScoreSet, combine_scores
from repro.ga.operators import crossover, crossover_cut_range, mutate, point_copy
from repro.ga.selection import selection_probabilities

encoded = st.lists(
    st.integers(min_value=0, max_value=19), min_size=2, max_size=120
).map(lambda xs: np.array(xs, dtype=np.uint8))

rates = st.floats(min_value=0.0, max_value=1.0)
margins = st.floats(min_value=0.0, max_value=0.49)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(encoded)
def test_copy_identity(seq):
    assert np.array_equal(point_copy(seq), seq)


@given(encoded, rates, seeds)
def test_mutate_preserves_length_and_alphabet(seq, rate, seed):
    out = mutate(seq, rate, np.random.default_rng(seed))
    assert out.size == seq.size
    assert out.dtype == np.uint8
    assert out.max() < 20


@given(encoded, seeds)
def test_mutate_full_rate_changes_all(seq, seed):
    out = mutate(seq, 1.0, np.random.default_rng(seed))
    assert not np.any(out == seq)


@given(st.integers(min_value=2, max_value=5000), margins)
def test_cut_range_invariants(length, margin):
    lo, hi = crossover_cut_range(length, margin)
    assert 1 <= lo < hi <= length
    # Both sides of any permitted cut are non-empty.
    assert lo >= 1 and hi - 1 <= length - 1


@given(encoded, encoded, margins, seeds)
def test_crossover_conserves_material(a, b, margin, seed):
    c1, c2 = crossover(a, b, margin, np.random.default_rng(seed))
    assert c1.size + c2.size == a.size + b.size
    combined = np.sort(np.concatenate([c1, c2]))
    original = np.sort(np.concatenate([a, b]))
    assert np.array_equal(combined, original)


@given(encoded, encoded, margins, seeds)
def test_crossover_children_nonempty(a, b, margin, seed):
    c1, c2 = crossover(a, b, margin, np.random.default_rng(seed))
    assert c1.size >= 2 and c2.size >= 2


@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50)
)
def test_selection_probabilities_normalised(fitness):
    p = selection_probabilities(np.array(fitness))
    assert p.size == len(fitness)
    assert p.sum() == pytest.approx(1.0)
    assert np.all(p >= 0)


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=20),
)
def test_fitness_bounds(target, nts):
    f = combine_scores(ScoreSet(target, tuple(nts)))
    assert 0.0 <= f <= 1.0
    # Never exceeds the target score (the non-target factor is <= 1).
    assert f <= target + 1e-12


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_fitness_monotone_in_max_non_target(target, nt_small, nt_big):
    lo, hi = sorted([nt_small, nt_big])
    f_lo = combine_scores(ScoreSet(target, (lo,)))
    f_hi = combine_scores(ScoreSet(target, (hi,)))
    assert f_lo >= f_hi
