"""Hypothesis property tests for persistence round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import AMINO_ACIDS
from repro.io import load_interactome, save_interactome
from repro.ppi.graph import InteractionGraph
from repro.sequences.protein import Protein

sequences = st.text(alphabet=st.sampled_from(AMINO_ACIDS), min_size=1, max_size=40)
annotations = st.dictionaries(
    st.sampled_from(["component", "abundance", "stressor", "motifs", "gene"]),
    st.one_of(
        st.text(max_size=20),
        st.integers(min_value=0, max_value=10**6),
        st.lists(st.text(max_size=10), max_size=4),
    ),
    max_size=4,
)


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    proteins = [
        Protein(f"P{i}", draw(sequences), draw(annotations)) for i in range(n)
    ]
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=20,
        )
    )
    return InteractionGraph(proteins, [(f"P{a}", f"P{b}") for a, b in edges])


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_interactome_roundtrip(tmp_path_factory, graph):
    path = tmp_path_factory.mktemp("io") / "world.json"
    save_interactome(graph, path)
    back = load_interactome(path)
    assert back.names == graph.names
    assert back.edges() == graph.edges()
    for name in graph.names:
        assert back.protein(name).sequence == graph.protein(name).sequence
        assert back.protein(name).annotations == graph.protein(name).annotations
