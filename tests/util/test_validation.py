"""Tests for validation helpers."""

import pytest

from repro.util.validation import (
    check_fraction,
    check_int_range,
    check_positive,
    check_probability_simplex,
)


class TestCheckFraction:
    def test_accepts_bounds_inclusive(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="x"):
            check_fraction(1.5, "x")
        with pytest.raises(ValueError):
            check_fraction(-0.1, "x")

    def test_exclusive_mode(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "x", inclusive=False)
        with pytest.raises(ValueError):
            check_fraction(1.0, "x", inclusive=False)
        assert check_fraction(0.5, "x", inclusive=False) == 0.5


class TestCheckPositive:
    def test_strict(self):
        assert check_positive(0.1, "x") == 0.1
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_non_strict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive(-1.0, "x", strict=False)


class TestCheckIntRange:
    def test_bounds_inclusive(self):
        assert check_int_range(3, "x", lo=3, hi=3) == 3
        import numpy as np

        assert check_int_range(np.int64(5), "x", lo=0) == 5

    def test_out_of_range_names_argument(self):
        with pytest.raises(ValueError, match="--workers must be <= 256"):
            check_int_range(300, "--workers", lo=0, hi=256)
        with pytest.raises(ValueError, match="--generations must be >= 1"):
            check_int_range(0, "--generations", lo=1)

    def test_non_integers_rejected(self):
        for bad in (1.5, "3", None, True):
            with pytest.raises(ValueError, match="must be an integer"):
                check_int_range(bad, "x", lo=0)


class TestSimplex:
    def test_valid(self):
        check_probability_simplex((0.1, 0.4, 0.5), ("a", "b", "c"))

    def test_sum_violation(self):
        with pytest.raises(ValueError, match="sum to 1.0"):
            check_probability_simplex((0.5, 0.6), ("a", "b"))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_probability_simplex((-0.1, 1.1), ("a", "b"))

    def test_paper_parameter_sets_pass(self):
        # The five Sec. 4.1 settings (with p_copy = 0.10) are all valid.
        for pc, pm in ((0.45, 0.45), (0.30, 0.60), (0.60, 0.30), (0.75, 0.15), (0.15, 0.75)):
            check_probability_simplex((0.10, pc, pm), ("copy", "cross", "mut"))
