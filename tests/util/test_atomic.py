"""Tests for the crash-safe write helper."""

import os

import pytest

from repro.util.atomic import atomic_write, atomic_write_text


class TestAtomicWrite:
    def test_writes_content_and_returns_byte_count(self, tmp_path):
        path = tmp_path / "out.json"
        n = atomic_write(path, '{"a": 1}')
        assert path.read_text() == '{"a": 1}'
        assert n == len('{"a": 1}')

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write(path, "new content")
        assert path.read_text() == "new content"

    def test_accepts_bytes(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write(path, b"\x00\x01\x02")
        assert path.read_bytes() == b"\x00\x01\x02"

    def test_text_alias(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "héllo", encoding="utf-8")
        assert path.read_text(encoding="utf-8") == "héllo"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write(path, "data")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_callable_payload(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write(path, lambda: "lazy")
        assert path.read_text() == "lazy"

    def test_failing_serializer_leaves_old_file_intact(self, tmp_path):
        """The callable runs before any file is touched: a serialization
        failure must not truncate or replace the existing file."""
        path = tmp_path / "out.txt"
        path.write_text("precious")

        def explode():
            raise ValueError("cannot serialize")

        with pytest.raises(ValueError):
            atomic_write(path, explode)
        assert path.read_text() == "precious"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_replace_leaves_old_file_and_no_tmp(self, tmp_path, monkeypatch):
        """A crash at the final rename must leave the previous content and
        clean up the temporary file."""
        path = tmp_path / "out.txt"
        path.write_text("precious")

        def broken_replace(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError):
            atomic_write(path, "new")
        assert path.read_text() == "precious"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]
