"""Tests for the Timer utility."""

import time

import pytest

from repro.util.timing import Timer


def test_timer_accumulates():
    t = Timer()
    with t:
        time.sleep(0.01)
    with t:
        time.sleep(0.01)
    assert t.calls == 2
    assert t.elapsed >= 0.02


def test_timer_mean():
    t = Timer()
    assert t.mean == 0.0
    with t:
        pass
    assert t.mean == pytest.approx(t.elapsed)


def test_timer_reset():
    t = Timer()
    with t:
        pass
    t.reset()
    assert t.calls == 0
    assert t.elapsed == 0.0


def test_timer_reentrant_usage():
    t = Timer()
    for _ in range(5):
        with t:
            pass
    assert t.calls == 5
