"""Tests for deterministic RNG derivation."""

import numpy as np
import pytest

from repro.util.rng import RngStream, derive_rng, spawn_streams


def test_same_seed_same_stream():
    a = derive_rng(42, "x").random(10)
    b = derive_rng(42, "x").random(10)
    assert np.array_equal(a, b)


def test_different_paths_differ():
    a = derive_rng(42, "x").random(10)
    b = derive_rng(42, "y").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = derive_rng(1, "x").random(10)
    b = derive_rng(2, "x").random(10)
    assert not np.array_equal(a, b)


def test_integer_path_components():
    a = derive_rng(0, "worker", 3).random(5)
    b = derive_rng(0, "worker", 4).random(5)
    assert not np.array_equal(a, b)


def test_generator_passthrough():
    gen = np.random.default_rng(7)
    assert derive_rng(gen) is gen


def test_generator_with_path_derives_child():
    gen = np.random.default_rng(7)
    child = derive_rng(gen, "sub")
    assert child is not gen


def test_none_seed_gives_fresh_stream():
    a = derive_rng(None)
    b = derive_rng(None)
    # Unseeded streams are independent (overwhelmingly unlikely to match).
    assert not np.array_equal(a.random(10), b.random(10))


def test_none_seed_with_path_is_deterministic():
    a = derive_rng(None, "fixed").random(5)
    b = derive_rng(None, "fixed").random(5)
    assert np.array_equal(a, b)


def test_spawn_streams_count_and_independence():
    streams = spawn_streams(9, 5, "workers")
    assert len(streams) == 5
    draws = [s.random(8) for s in streams]
    for i in range(5):
        for j in range(i + 1, 5):
            assert not np.array_equal(draws[i], draws[j])


def test_spawn_streams_negative_count_rejected():
    with pytest.raises(ValueError):
        spawn_streams(0, -1)


def test_spawn_streams_zero_is_empty():
    assert spawn_streams(0, 0) == []


class TestRngStream:
    def test_lazy_and_cached(self):
        s = RngStream(seed=3, name="t")
        g1 = s.rng
        assert s.rng is g1

    def test_reset_restores_sequence(self):
        s = RngStream(seed=3, name="t")
        first = s.rng.random(4)
        s.reset()
        again = s.rng.random(4)
        assert np.array_equal(first, again)

    def test_child_does_not_disturb_parent(self):
        s = RngStream(seed=3, name="t")
        before = s.rng.bit_generator.state["state"]["state"]
        s.child("sub", 1)
        after = s.rng.bit_generator.state["state"]["state"]
        assert before == after

    def test_children_deterministic(self):
        a = RngStream(seed=3, name="t").child(1).random(4)
        b = RngStream(seed=3, name="t").child(1).random(4)
        assert np.array_equal(a, b)
