"""Structural tests of the bundled PAM120 and BLOSUM62 tables."""

import numpy as np
import pytest

from repro.constants import AA_TO_INDEX
from repro.substitution.data import BLOSUM62_SCORES, PAM120_SCORES


@pytest.fixture(params=["pam", "blosum"])
def scores(request):
    return PAM120_SCORES if request.param == "pam" else BLOSUM62_SCORES


def test_shape(scores):
    assert scores.shape == (20, 20)


def test_symmetric(scores):
    assert np.array_equal(scores, scores.T)


def test_diagonal_positive(scores):
    assert np.all(np.diag(scores) > 0)


def test_identity_maximises_each_row(scores):
    # A residue is never more similar to another residue than to itself.
    diag = np.diag(scores)
    assert np.all(scores <= diag[None, :])
    assert np.all(scores <= diag[:, None])


def test_tryptophan_self_score_is_largest(scores):
    # W is the rarest residue and gets the highest self-score in both
    # families.
    w = AA_TO_INDEX["W"]
    assert scores[w, w] == np.diag(scores).max()


def test_biochemically_similar_pairs_positive(scores):
    pairs = [("I", "L"), ("I", "V"), ("D", "E"), ("K", "R"), ("F", "Y")]
    for a, b in pairs:
        assert scores[AA_TO_INDEX[a], AA_TO_INDEX[b]] > 0, (a, b)


def test_dissimilar_pairs_negative(scores):
    pairs = [("W", "G"), ("C", "D"), ("P", "F")]
    for a, b in pairs:
        assert scores[AA_TO_INDEX[a], AA_TO_INDEX[b]] < 0, (a, b)


def test_pam120_harsher_than_blosum62_off_diagonal():
    # PAM120 is a short-distance matrix: mismatch penalties are generally
    # stronger than BLOSUM62's.
    off = ~np.eye(20, dtype=bool)
    assert PAM120_SCORES[off].mean() < BLOSUM62_SCORES[off].mean()


def test_expected_background_score_negative(scores):
    # A random alignment must score negative on average, or thresholding
    # would not separate signal from noise.
    from repro.constants import YEAST_AA_FREQUENCIES as f

    expected = f @ scores @ f
    assert expected < 0
