"""Tests for the Dayhoff PAM model machinery."""

import numpy as np
import pytest

from repro.substitution import PAM120
from repro.substitution.dayhoff import (
    DayhoffModel,
    log_odds_matrix,
    markov_from_log_odds,
)


@pytest.fixture(scope="module")
def model():
    return DayhoffModel.from_log_odds(PAM120.scores, pam_distance=120)


def test_markov_rows_stochastic(model):
    assert np.allclose(model.markov.sum(axis=1), 1.0)
    assert np.all(model.markov >= 0)


def test_markov_detailed_balance(model):
    f = model.frequencies
    flux = f[:, None] * model.markov
    assert np.allclose(flux, flux.T, atol=1e-12)


def test_stationary_distribution(model):
    f = model.frequencies
    assert np.allclose(f @ model.markov, f, atol=1e-10)


def test_mutation_fraction_in_range(model):
    mf = model.mutation_fraction()
    # At 120 PAMs, well over half of positions have been hit at least once
    # but the chain has not fully mixed.
    assert 0.3 < mf < 0.9


def test_at_distance_identity(model):
    same = model.at_distance(120)
    assert np.allclose(same.markov, model.markov, atol=1e-8)


def test_at_distance_composition(model):
    # M(240) == M(120)^2 (Chapman-Kolmogorov).
    m240 = model.at_distance(240).markov
    assert np.allclose(m240, model.markov @ model.markov, atol=1e-6)


def test_shorter_distance_more_diagonal(model):
    m30 = model.at_distance(30)
    m250 = model.at_distance(250)
    assert np.diag(m30.markov).mean() > np.diag(model.markov).mean()
    assert np.diag(m250.markov).mean() < np.diag(model.markov).mean()


def test_mutation_fraction_monotone_in_distance(model):
    fracs = [model.at_distance(d).mutation_fraction() for d in (10, 60, 120, 250)]
    assert fracs == sorted(fracs)


def test_log_odds_roundtrip_close():
    # Recovered log-odds at the calibration distance approximate the input;
    # exact equality is impossible (the published table is integer-rounded
    # and the joint-renormalisation shifts rare-residue cells the most).
    model = DayhoffModel.from_log_odds(PAM120.scores, pam_distance=120)
    table = model.log_odds(120).scores
    deviation = np.abs(table - PAM120.scores)
    assert deviation.mean() < 0.5
    assert deviation.max() <= 3.0


def test_derived_matrices_are_valid_substitution_matrices(model):
    for d in (30, 250):
        m = model.log_odds(d)
        assert np.allclose(m.scores, m.scores.T)
        assert np.all(np.diag(m.scores) > 0)


def test_derived_diagonal_decreases_with_distance(model):
    d30 = np.diag(model.log_odds(30).scores).mean()
    d250 = np.diag(model.log_odds(250).scores).mean()
    assert d30 > d250


def test_invalid_inputs():
    with pytest.raises(ValueError):
        markov_from_log_odds(np.zeros((5, 5)))
    with pytest.raises(ValueError):
        markov_from_log_odds(PAM120.scores, scale=0.0)
    model = DayhoffModel.from_log_odds(PAM120.scores, pam_distance=120)
    with pytest.raises(ValueError):
        model.at_distance(0)


def test_model_validation():
    bad_markov = np.full((20, 20), 0.05)
    bad_markov[0, 0] = 0.5  # row 0 no longer sums to 1
    with pytest.raises(ValueError, match="sum to 1"):
        DayhoffModel(bad_markov, np.full(20, 0.05), 1.0)


def test_log_odds_matrix_symmetric_integer():
    model = DayhoffModel.from_log_odds(PAM120.scores, pam_distance=120)
    table = log_odds_matrix(model.markov, model.frequencies, integer=True)
    assert np.array_equal(table, table.T)
    assert np.array_equal(table, np.rint(table))
