"""Tests for the SubstitutionMatrix wrapper."""

import numpy as np
import pytest

from repro.sequences.encoding import encode
from repro.substitution import BLOSUM62, PAM120, SubstitutionMatrix, get_matrix


def test_registry_lookup():
    assert get_matrix("pam120") is PAM120
    assert get_matrix("BLOSUM62") is BLOSUM62


def test_registry_unknown():
    with pytest.raises(KeyError, match="PAM250"):
        get_matrix("PAM250")


def test_scores_read_only():
    with pytest.raises(ValueError):
        PAM120.scores[0, 0] = 99


def test_score_single_pair():
    assert PAM120.score("A", "A") == PAM120.scores[0, 0]
    assert PAM120.score("a", "a") == PAM120.score("A", "A")


def test_score_unknown_residue():
    with pytest.raises(KeyError):
        PAM120.score("X", "A")


def test_pair_scores_shape_and_values():
    a = encode("AR")
    b = encode("NDC")
    m = PAM120.pair_scores(a, b)
    assert m.shape == (2, 3)
    assert m[0, 0] == PAM120.score("A", "N")
    assert m[1, 2] == PAM120.score("R", "C")


def test_self_similarity():
    a = encode("ARW")
    s = PAM120.self_similarity(a)
    assert s[0] == PAM120.score("A", "A")
    assert s[2] == PAM120.score("W", "W")


def test_max_min_score():
    assert PAM120.max_score == PAM120.scores.max()
    assert PAM120.min_score == PAM120.scores.min()
    assert PAM120.max_score == PAM120.score("W", "W")


def test_rejects_wrong_shape():
    with pytest.raises(ValueError, match="20x20"):
        SubstitutionMatrix("bad", np.zeros((5, 5)))


def test_rejects_asymmetric():
    bad = np.zeros((20, 20))
    bad[0, 1] = 1.0
    with pytest.raises(ValueError, match="symmetric"):
        SubstitutionMatrix("bad", bad)


def test_repr():
    assert "PAM120" in repr(PAM120)
