"""Tests for the Figure 2 heat map."""

import numpy as np
import pytest

from repro.analysis.heatmap import fitness_heatmap, render_heatmap


@pytest.fixture(scope="module")
def grid():
    return fitness_heatmap(41)


def test_axes_and_shape(grid):
    assert grid["target"].shape == (41,)
    assert grid["max_non_target"].shape == (41,)
    assert grid["fitness"].shape == (41, 41)


def test_formula(grid):
    f = grid["fitness"]
    t = grid["target"]
    nt = grid["max_non_target"]
    for i in (0, 10, 40):
        for j in (0, 25, 40):
            assert f[i, j] == pytest.approx((1 - nt[i]) * t[j])


def test_peak_in_paper_corner(grid):
    f = grid["fitness"]
    # Peak of exactly 1 at target=1, max_nt=0 (paper's lower-right corner).
    assert f[0, -1] == 1.0
    assert f.max() == 1.0
    # Zero along both hostile edges.
    assert np.all(f[-1, :] == 0.0)  # max_nt = 1
    assert np.all(f[:, 0] == 0.0)  # target = 0


def test_monotonicity(grid):
    f = grid["fitness"]
    assert np.all(np.diff(f, axis=1) >= 0)  # increasing in target
    assert np.all(np.diff(f, axis=0) <= 0)  # decreasing in max_nt


def test_iso_curves_are_hyperbolae(grid):
    # fitness = c  <=>  (1 - y) x = c: verify a sample point pair.
    f = grid["fitness"]
    t = grid["target"]
    c = f[10, 30]
    x2 = t[35]
    y2 = 1 - c / x2
    assert (1 - y2) * x2 == pytest.approx(c)


def test_resolution_validation():
    with pytest.raises(ValueError):
        fitness_heatmap(1)


class TestRender:
    def test_bright_corner_bottom_right(self, grid):
        text = render_heatmap(grid["fitness"], glyphs=" @", max_rows=10, max_cols=20)
        rows = [l for l in text.split("\n") if l.startswith("|")]
        # Bottom data row ends bright, top row has no bright cells.
        assert rows[-1].rstrip().endswith("@")
        assert "@" not in rows[0]

    def test_size_capped(self, grid):
        text = render_heatmap(grid["fitness"], max_rows=6, max_cols=12)
        rows = [l for l in text.split("\n") if l.startswith("|")]
        assert len(rows) == 6

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros(5))
