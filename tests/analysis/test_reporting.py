"""Tests for text rendering utilities."""

import numpy as np
import pytest

from repro.analysis.reporting import ascii_bar_chart, ascii_line_plot, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["Name", "Value"], [["a", 1.0], ["bb", 2.5]])
        lines = out.split("\n")
        assert lines[0].startswith("Name")
        assert "1.0000" in out
        assert "2.5000" in out

    def test_title(self):
        out = format_table(["A"], [["x"]], title="My Table")
        assert out.startswith("My Table")

    def test_float_format(self):
        out = format_table(["A"], [[0.123456]], float_format="{:.2f}")
        assert "0.12" in out
        assert "0.1234" not in out

    def test_mixed_types(self):
        out = format_table(["A", "B"], [["row", 42]])
        assert "42" in out

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="row 0"):
            format_table(["A", "B"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_no_rows(self):
        out = format_table(["A", "B"], [])
        assert "A" in out


class TestBarChart:
    def test_values_and_errors_shown(self):
        out = ascii_bar_chart(
            ["WT", "KO"], [90.0, 27.0], errors=[1.5, 3.2], max_value=100.0
        )
        assert "90.0%" in out
        assert "± 3.2" in out

    def test_bar_lengths_proportional(self):
        out = ascii_bar_chart(["a", "b"], [100.0, 50.0], max_value=100.0, width=20)
        lines = out.split("\n")
        assert lines[0].count("█") == 20
        assert lines[1].count("█") == 10

    def test_title(self):
        out = ascii_bar_chart(["a"], [1.0], title="Counts")
        assert out.startswith("Counts")

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0], errors=[1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0], width=5)

    def test_overflow_clipped(self):
        out = ascii_bar_chart(["a"], [200.0], max_value=100.0, width=10)
        assert out.split("\n")[0].count("█") == 10


class TestLinePlot:
    def test_contains_series_glyphs_and_legend(self):
        x = np.arange(10.0)
        out = ascii_line_plot(
            {"Target": (x, x / 10), "Max nt": (x, x / 20)},
            x_label="gen",
            y_label="score",
        )
        assert "T=Target" in out
        assert "M=Max nt" in out
        assert "gen" in out

    def test_glyph_collision_resolved(self):
        x = np.arange(5.0)
        out = ascii_line_plot({"aaa": (x, x), "abc": (x, x + 1)})
        assert "A=aaa" in out
        assert "0=abc" in out

    def test_y_range_fixed(self):
        x = np.arange(5.0)
        out = ascii_line_plot({"s": (x, x / 10)}, y_range=(0.0, 1.0))
        assert "(0 .. 1)" in out

    def test_constant_series_handled(self):
        x = np.arange(5.0)
        out = ascii_line_plot({"c": (x, np.full(5, 0.5))})
        assert "C" in out.upper()

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_line_plot({})
        with pytest.raises(ValueError):
            ascii_line_plot({"s": (np.arange(3.0), np.arange(4.0))})
        with pytest.raises(ValueError):
            ascii_line_plot({"s": (np.arange(3.0), np.arange(3.0))}, width=5)

    def test_dimensions(self):
        x = np.arange(20.0)
        out = ascii_line_plot({"s": (x, x)}, width=30, height=8)
        body = [l for l in out.split("\n") if l.startswith("|")]
        assert len(body) == 8
        assert all(len(l) <= 31 for l in body)
