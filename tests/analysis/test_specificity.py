"""Tests for the proteome-wide specificity scan."""

import numpy as np
import pytest

from repro.analysis.specificity import SpecificityReport, specificity_scan


@pytest.fixture(scope="module")
def report(tiny_world, tiny_engine):
    rng = np.random.default_rng(5)
    seq = rng.integers(0, 20, size=40).astype(np.uint8)
    return specificity_scan(tiny_engine, seq, "YBL051C")


def test_scans_whole_proteome(report, tiny_world):
    assert len(report.off_target_names) == len(tiny_world.graph) - 1
    assert "YBL051C" not in report.off_target_names


def test_sorted_descending(report):
    scores = report.off_target_scores
    assert np.all(np.diff(scores) <= 0)
    assert report.max_off_target == scores[0]


def test_avg_and_margin_consistent(report):
    assert report.avg_off_target == pytest.approx(report.off_target_scores.mean())
    assert report.specificity_margin == pytest.approx(
        report.target_score - report.max_off_target
    )


def test_rank_of_target(report):
    better = (report.off_target_scores > report.target_score).sum()
    assert report.rank_of_target() == better + 1


def test_predicted_interactors_thresholding(report):
    none = report.predicted_interactors(1.1)
    assert none == []
    everyone = report.predicted_interactors(0.0)
    assert len(everyone) == len(report.off_target_names)


def test_top_table_renders(report):
    text = report.top_table(5)
    assert "YBL051C (target)" in text
    assert text.count("\n") >= 7


def test_matches_engine_scores(report, tiny_engine, tiny_world):
    rng = np.random.default_rng(5)
    seq = rng.integers(0, 20, size=40).astype(np.uint8)
    name = report.off_target_names[0]
    assert tiny_engine.score(seq, name) == pytest.approx(
        report.off_target_scores[0]
    )


def test_restricted_scan(tiny_engine, tiny_world):
    rng = np.random.default_rng(6)
    seq = rng.integers(0, 20, size=30).astype(np.uint8)
    subset = tiny_world.graph.names[:5]
    report = specificity_scan(tiny_engine, seq, "YBL051C", proteins=subset)
    # Target added automatically when missing from the subset.
    assert len(report.off_target_names) <= 5


def test_good_design_ranks_target_high(tiny_world, tiny_engine):
    """A candidate carrying the complementary lock for the target's key
    should rank the target near the top of the proteome scan."""
    tp = tiny_world.protein("YBL051C")
    keys = [t for t in tp.annotations["motifs"] if str(t).startswith("key:")]
    pair = tiny_world.library[int(str(keys[0]).split(":")[1])]
    rng = np.random.default_rng(7)
    seq = rng.integers(0, 20, size=40).astype(np.uint8)
    seq[5 : 5 + pair.lock.size] = pair.lock
    report = specificity_scan(tiny_engine, seq, "YBL051C")
    assert report.target_score > report.avg_off_target
    assert report.rank_of_target() <= len(report.off_target_names) // 3


def test_validation():
    with pytest.raises(ValueError):
        SpecificityReport("T", 0.5, ("a", "b"), np.array([0.1]))
