"""Tests for learning-curve analysis."""

import numpy as np
import pytest

from repro.analysis.learning_curve import (
    acceptance_crossing,
    downsample_curve,
    summarize_history,
)
from repro.ga.stats import GenerationStats, RunHistory


def _history(target_curve, fitness_curve=None):
    h = RunHistory()
    fitness_curve = fitness_curve or target_curve
    for g, (t, f) in enumerate(zip(target_curve, fitness_curve)):
        h.append(
            GenerationStats(
                generation=g,
                best_fitness=f,
                mean_fitness=f / 2,
                best_target_score=t,
                best_max_non_target=0.2,
                best_avg_non_target=0.1,
                evaluations=3,
            )
        )
    return h


class TestAcceptanceCrossing:
    def test_finds_first_crossing(self):
        h = _history([0.1, 0.3, 0.55, 0.4, 0.6])
        assert acceptance_crossing(h, 0.5) == 2

    def test_never_crosses(self):
        h = _history([0.1, 0.2])
        assert acceptance_crossing(h, 0.5) is None

    def test_crosses_immediately(self):
        h = _history([0.7])
        assert acceptance_crossing(h, 0.5) == 0


class TestDownsample:
    def test_short_curves_untouched(self):
        x = np.arange(10)
        y = x * 2
        dx, dy = downsample_curve(x, y, max_points=20)
        assert np.array_equal(dx, x)

    def test_keeps_endpoints(self):
        x = np.arange(1000)
        dx, dy = downsample_curve(x, x, max_points=50)
        assert dx[0] == 0
        assert dx[-1] == 999
        assert dx.size <= 50

    def test_validation(self):
        with pytest.raises(ValueError):
            downsample_curve(np.arange(3), np.arange(4))
        with pytest.raises(ValueError):
            downsample_curve(np.arange(3), np.arange(3), max_points=1)


class TestSummarize:
    def test_headline_numbers(self):
        h = _history([0.1, 0.5, 0.4], fitness_curve=[0.1, 0.45, 0.3])
        s = summarize_history(h)
        assert s["generations"] == 3
        assert s["initial_fitness"] == pytest.approx(0.1)
        assert s["final_fitness"] == pytest.approx(0.45)
        assert s["improvement"] == pytest.approx(0.35)
        # Statistics taken at the best-fitness generation (index 1).
        assert s["best_target_score"] == pytest.approx(0.5)

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            summarize_history(RunHistory())
