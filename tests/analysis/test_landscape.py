"""Tests for the mutational-scan landscape analysis."""

import numpy as np
import pytest

from repro.analysis.landscape import MutationalScan, mutational_scan
from repro.constants import AA_TO_INDEX, NUM_AMINO_ACIDS
from repro.ga.fitness import ScoreProvider, ScoreSet


class MotifProvider(ScoreProvider):
    """Target score = fraction of a fixed 3-residue motif present at a
    fixed location; positions 0-2 are load-bearing, the rest neutral."""

    MOTIF = (3, 7, 11)

    def scores(self, sequences):
        out = []
        for seq in sequences:
            arr = np.asarray(seq)
            hits = sum(
                1 for i, r in enumerate(self.MOTIF) if i < arr.size and arr[i] == r
            )
            out.append(ScoreSet(hits / len(self.MOTIF), (0.1,)))
        return out


@pytest.fixture(scope="module")
def scan():
    base = np.zeros(8, dtype=np.uint8)
    base[0], base[1], base[2] = MotifProvider.MOTIF
    return mutational_scan(MotifProvider(), base)


class TestScan:
    def test_matrix_shape(self, scan):
        assert scan.fitness_matrix.shape == (8, NUM_AMINO_ACIDS)
        assert scan.length == 8

    def test_wildtype_cells_hold_base_fitness(self, scan):
        for p in range(scan.length):
            wild = int(scan.base_sequence[p])
            assert scan.fitness_matrix[p, wild] == pytest.approx(scan.base_fitness)

    def test_base_fitness_value(self, scan):
        # Full motif present, non-target 0.1 → (1 - 0.1) * 1.0.
        assert scan.base_fitness == pytest.approx(0.9)

    def test_motif_positions_are_critical(self, scan):
        critical = scan.critical_positions(3)
        assert set(critical) == {0, 1, 2}

    def test_neutral_positions_insensitive(self, scan):
        sensitivity = scan.position_sensitivity()
        for p in range(3, 8):
            assert sensitivity[p] == pytest.approx(0.0)

    def test_no_beneficial_mutations_at_optimum(self, scan):
        assert scan.beneficial_mutations() == []

    def test_robustness_reflects_motif_share(self, scan):
        # Mutating any of 3 motif positions (19 variants each) drops
        # fitness to 2/3; the 5 neutral positions keep it at 100 %.
        assert scan.robustness() == pytest.approx(5 * 19 / (8 * 19))


class TestSuboptimalDesign:
    def test_beneficial_mutations_found(self):
        base = np.zeros(8, dtype=np.uint8)
        base[0], base[1] = MotifProvider.MOTIF[:2]  # third motif site absent
        scan = mutational_scan(MotifProvider(), base)
        gains = scan.beneficial_mutations()
        assert gains
        position, residue, gain = gains[0]
        assert position == 2
        assert AA_TO_INDEX[residue] == MotifProvider.MOTIF[2]
        assert gain == pytest.approx(0.9 - 0.6)


class TestRestrictedScan:
    def test_positions_subset(self):
        base = np.zeros(8, dtype=np.uint8)
        base[0], base[1], base[2] = MotifProvider.MOTIF
        scan = mutational_scan(MotifProvider(), base, positions=[0, 5])
        # Unscanned positions keep the base fitness everywhere.
        assert np.allclose(scan.fitness_matrix[3], scan.base_fitness)
        # Scanned motif position shows losses.
        assert scan.position_sensitivity()[0] > 0

    def test_position_out_of_range(self):
        base = np.zeros(4, dtype=np.uint8)
        with pytest.raises(ValueError):
            mutational_scan(MotifProvider(), base, positions=[4])


class TestValidation:
    def test_bad_sequence(self):
        with pytest.raises(ValueError):
            mutational_scan(MotifProvider(), np.array([], dtype=np.uint8))

    def test_bad_matrix_shape(self):
        with pytest.raises(ValueError):
            MutationalScan(
                np.zeros(4, dtype=np.uint8), 0.5, np.zeros((4, 5))
            )


class TestOnRealProvider:
    def test_scan_against_pipe(self, tiny_provider):
        rng = np.random.default_rng(1)
        seq = rng.integers(0, 20, size=12).astype(np.uint8)
        scan = mutational_scan(tiny_provider, seq, positions=[0, 5])
        assert scan.fitness_matrix.min() >= 0.0
        assert scan.fitness_matrix.max() <= 1.0
        # 2 positions * 19 variants + 1 base evaluation.
        assert tiny_provider.cache_stats["misses"] <= 39
