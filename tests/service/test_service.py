"""End-to-end :class:`~repro.service.DesignService` behaviour.

The acceptance contract of the multi-tenant service: fair quota-bounded
admission (a quota-blocked job *stays PENDING*), cancel/evict at a
generation barrier, resume bit-exact with an uninterrupted run of the
same spec on a dedicated provider, durable artifacts with stable
schemas, and crash recovery from the on-disk state alone.
"""

import json
import time

import pytest

from repro.ga.engine import InSiPSEngine
from repro.ga.fitness import SerialScoreProvider
from repro.parallel.worker import FaultPlan
from repro.service import (
    DesignService,
    JobSpec,
    JobState,
    QuotaError,
    TenantQuota,
    history_digest,
    read_result,
    read_status,
    write_cancel_request,
    write_submit_request,
)

TARGET = "YBL051C"
POPULATION = 8
LENGTH = 20
SEED = 7


def _wait(predicate, timeout=120.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _spec(**overrides):
    base = dict(
        tenant="alice",
        target=TARGET,
        seed=SEED,
        generations=3,
        population_size=POPULATION,
        candidate_length=LENGTH,
        checkpoint_every=1,
    )
    base.update(overrides)
    return JobSpec(**base)


def _reference(tiny_world, spec):
    """The same JobSpec run uninterrupted on a dedicated serial provider."""
    non_targets = tiny_world.non_targets_for(
        spec.target, limit=spec.non_target_limit
    )
    engine = InSiPSEngine(
        SerialScoreProvider(tiny_world.engine, spec.target, non_targets),
        spec.params,
        population_size=spec.population_size,
        candidate_length=spec.candidate_length,
        seed=spec.seed,
    )
    return engine.run(spec.generations)


def _service(tiny_world, root, **overrides):
    kwargs = dict(max_concurrent=2, fsync=False, num_workers=1)
    kwargs.update(overrides)
    return DesignService(tiny_world, root, **kwargs)


def test_submit_runs_to_done_with_stable_artifacts(tiny_world, tmp_path):
    spec = _spec()
    with _service(tiny_world, tmp_path / "svc") as service:
        job_id = service.submit(spec)
        assert _wait(
            lambda: service.status(job_id)["state"] == JobState.DONE
        ), service.status(job_id)
        status = service.status(job_id)
        result = service.result(job_id)

        # In-memory status equals the durable artifact, field for field.
        assert read_status(service.root, job_id) == status
        assert read_result(service.root, job_id) == result
        assert status["format"] == "repro-job-status"
        assert status["attempts"] == 1
        assert status["generations_done"] == spec.generations
        assert status["error"] is None

        job_directory = service.root / "jobs" / job_id
        assert (job_directory / "spec.json").exists()
        assert (job_directory / "telemetry.jsonl").exists()
        assert list((job_directory / "checkpoints").glob("ckpt-*.json"))

    # Bit-exact with a dedicated uninterrupted provider (the fabric
    # guarantee carried through the service layer).
    reference = _reference(tiny_world, spec)
    assert result["format"] == "repro-job-result"
    assert result["fitness"] == reference.best_fitness
    assert result["sequence"] == reference.best.sequence
    assert result["history_digest"] == history_digest(reference.history)
    assert result["completed"] is True


def test_quota_blocked_job_stays_pending_and_runs_after_cancel(
    tiny_world, tmp_path
):
    # 3 jobs across 2 tenants with a per-tenant quota of 1 concurrent
    # job: alice's second job must sit PENDING while her first runs,
    # even with a free engine thread; cancelling the first mid-run frees
    # the slot and the pending job completes.
    with _service(
        tiny_world,
        tmp_path / "svc",
        default_quota=TenantQuota(max_running=1),
        faults=FaultPlan(delay=0.01),
    ) as service:
        long_a = service.submit(
            _spec(tenant="alice", generations=400, job_id="job-a-long")
        )
        short_b = service.submit(
            _spec(tenant="bob", generations=2, job_id="job-b-short")
        )
        blocked_a = service.submit(
            _spec(tenant="alice", generations=2, job_id="job-a-blocked")
        )

        # Both tenants run concurrently; bob's short job finishes.
        assert _wait(
            lambda: service.status(short_b)["state"] == JobState.DONE
        ), service.status(short_b)
        # alice's first job is still mid-run and her second still queued:
        # the quota, not thread availability, is what blocks it.
        assert service.status(long_a)["state"] == JobState.RUNNING
        assert service.status(blocked_a)["state"] == JobState.PENDING

        # Cancel mid-run: stops at the next barrier, stays resumable.
        assert _wait(lambda: service.status(long_a)["generations_done"] >= 1)
        service.cancel(long_a)
        assert _wait(
            lambda: service.status(long_a)["state"] == JobState.CANCELLED
        ), service.status(long_a)
        cancelled = service.status(long_a)
        assert cancelled["generations_done"] < 400
        assert "cancel" in cancelled["reason"]
        assert list(
            (service.root / "jobs" / long_a / "checkpoints").glob("ckpt-*")
        ), "cancel must leave a resume point"

        # The quota slot freed: the blocked job now runs to completion.
        assert _wait(
            lambda: service.status(blocked_a)["state"] == JobState.DONE
        ), service.status(blocked_a)
        stats = service.service_stats()
        assert stats["jobs"][JobState.CANCELLED] == 1
        assert stats["jobs"][JobState.DONE] == 2


def test_evicted_job_resumes_bit_exact(tiny_world, tmp_path):
    # The acceptance gate: evict mid-run (checkpoint + release client),
    # resume through the service, and the final GAResult must be
    # bit-exact with the same JobSpec run uninterrupted on a dedicated
    # serial provider.
    spec = _spec(generations=8, job_id="job-evictee")
    with _service(
        tiny_world, tmp_path / "svc", faults=FaultPlan(delay=0.01)
    ) as service:
        job_id = service.submit(spec)
        assert _wait(lambda: service.status(job_id)["generations_done"] >= 2)
        service.evict(job_id)
        assert _wait(
            lambda: service.status(job_id)["state"] == JobState.EVICTED
        ), service.status(job_id)
        evicted = service.status(job_id)
        assert evicted["generations_done"] < spec.generations

        service.resume(job_id)
        assert _wait(
            lambda: service.status(job_id)["state"] == JobState.DONE
        ), service.status(job_id)
        assert service.status(job_id)["attempts"] == 2
        result = service.result(job_id)

    reference = _reference(tiny_world, spec)
    assert result["history_digest"] == history_digest(reference.history)
    assert result["sequence"] == reference.best.sequence
    assert result["fitness"] == reference.best_fitness
    assert result["generations"] == spec.generations


def test_quota_rejections_are_deterministic_with_tenant_and_reason(
    tiny_world, tmp_path
):
    with _service(
        tiny_world,
        tmp_path / "svc",
        max_concurrent=1,
        max_queue=1,
        quotas={"carol": TenantQuota(max_running=1, max_demand=2)},
        faults=FaultPlan(delay=0.01),
    ) as service:
        service.submit(
            _spec(tenant="carol", generations=200, demand=2, job_id="job-c1")
        )
        # Let the engine thread claim it so the run queue is empty and
        # the *demand* quota (RUNNING jobs count too) is what rejects.
        assert _wait(
            lambda: service.status("job-c1")["state"] == JobState.RUNNING
        )
        with pytest.raises(QuotaError) as excinfo:
            service.submit(_spec(tenant="carol", demand=1, job_id="job-c2"))
        assert excinfo.value.tenant == "carol"
        assert "demand quota" in excinfo.value.reason

        # Other tenants are unaffected by carol's quota but bounded by
        # the global queue: one pending job fills it.
        service.submit(_spec(tenant="dave", job_id="job-d1"))
        with pytest.raises(QuotaError) as excinfo:
            service.submit(_spec(tenant="erin", job_id="job-e1"))
        assert excinfo.value.tenant == "erin"
        assert "queue full" in excinfo.value.reason
        assert service.service_stats()["rejected"] == 2
        service.cancel("job-c1")


def test_cancel_pending_job_and_lifecycle_validation(tiny_world, tmp_path):
    with _service(
        tiny_world,
        tmp_path / "svc",
        max_concurrent=1,
        default_quota=TenantQuota(max_running=1),
        faults=FaultPlan(delay=0.01),
    ) as service:
        running = service.submit(_spec(generations=400, job_id="job-run"))
        queued = service.submit(_spec(job_id="job-queued"))
        assert _wait(
            lambda: service.status(running)["state"] == JobState.RUNNING
        )
        # Cancelling a job that never ran is immediate.
        assert service.cancel(queued) == JobState.CANCELLED
        assert service.status(queued)["attempts"] == 0

        with pytest.raises(KeyError):
            service.status("job-unknown")
        with pytest.raises(ValueError, match="CANCELLED"):
            service.cancel(queued)
        # A cancelled job resumes (fresh from its seed: no snapshot yet).
        service.resume(queued)
        service.cancel(running)
        assert _wait(
            lambda: service.status(queued)["state"] == JobState.DONE
        ), service.status(queued)
        with pytest.raises(ValueError, match="DONE"):
            service.resume(queued)
        with pytest.raises(ValueError, match="already exists"):
            service.submit(_spec(job_id="job-queued"))


def test_file_control_plane_submit_cancel_and_rejection(tiny_world, tmp_path):
    root = tmp_path / "svc"
    with _service(
        tiny_world, root, faults=FaultPlan(delay=0.01)
    ) as service:
        # Submit requests are admitted in FIFO order at the next poll.
        write_submit_request(root, _spec(job_id="job-file-1"))
        write_submit_request(
            root, _spec(target="NOPE-not-a-protein", job_id="job-file-bad")
        )
        service.poll_control_plane()
        assert service.status("job-file-1")["state"] in (
            JobState.PENDING,
            JobState.RUNNING,
            JobState.DONE,
        )
        # The invalid request is rejected loudly, not silently dropped.
        with pytest.raises(KeyError):
            service.status("job-file-bad")
        rejected = list((root / "rejected").glob("*.json"))
        assert len(rejected) == 1
        assert "NOPE-not-a-protein" in rejected[0].read_text()
        assert not list((root / "queue").glob("*.json"))

        # Cancel markers are honoured for live jobs.
        write_submit_request(
            root, _spec(generations=400, job_id="job-file-2")
        )
        service.poll_control_plane()
        assert _wait(lambda: service.status("job-file-2")["generations_done"] >= 1)
        write_cancel_request(root, "job-file-2")
        service.poll_control_plane()
        assert _wait(
            lambda: service.status("job-file-2")["state"] == JobState.CANCELLED
        ), service.status("job-file-2")
        assert not (root / "jobs" / "job-file-2" / "cancel.request").exists()


def test_recovery_readmits_interrupted_jobs_bit_exact(tiny_world, tmp_path):
    # Simulate a SIGKILL: run a job partway, evict it (leaving durable
    # snapshots), then forge its on-disk state back to RUNNING — exactly
    # what a crashed service leaves behind.  A new service over the same
    # root must re-admit it and finish bit-exact.
    root = tmp_path / "svc"
    spec = _spec(generations=6, job_id="job-crash")
    with _service(
        tiny_world, root, faults=FaultPlan(delay=0.01)
    ) as service:
        service.submit(spec)
        assert _wait(lambda: service.status("job-crash")["generations_done"] >= 2)
        service.evict("job-crash")
        assert _wait(
            lambda: service.status("job-crash")["state"] == JobState.EVICTED
        )

    status_path = root / "jobs" / "job-crash" / "status.json"
    forged = json.loads(status_path.read_text())
    forged["state"] = JobState.RUNNING
    status_path.write_text(json.dumps(forged))

    with _service(tiny_world, root) as service:
        assert service.service_stats()["recovered"] == 1
        assert _wait(
            lambda: service.status("job-crash")["state"] == JobState.DONE
        ), service.status("job-crash")
        result = service.result("job-crash")

    reference = _reference(tiny_world, spec)
    assert result["history_digest"] == history_digest(reference.history)
    assert result["sequence"] == reference.best.sequence
