"""JobSpec / TenantQuota validation and the artifact-reader helpers.

Everything here is pure (no fabric, no worker pool): admission-time
validation must fail fast with actionable messages, and the JSON schemas
must round-trip exactly — they are the service's public API surface.
"""

import json

import pytest

from repro.ga.config import GAParams
from repro.service import (
    JobSpec,
    TenantQuota,
    history_digest,
    job_dir,
    list_statuses,
    read_result,
    read_status,
    write_submit_request,
)


def _spec(**overrides):
    base = dict(
        tenant="alice",
        target="YBL051C",
        seed=3,
        generations=5,
        population_size=8,
        candidate_length=20,
        deadline_s=12.5,
        demand=2,
        job_id="job-0001",
    )
    base.update(overrides)
    return JobSpec(**base)


def test_spec_payload_roundtrip():
    spec = _spec(non_targets=("YBR001A", "YBR002B"), non_target_limit=None)
    payload = spec.to_payload()
    assert payload["format"] == "repro-job-spec"
    # The payload is plain JSON (it travels through queue files).
    restored = JobSpec.from_payload(json.loads(json.dumps(payload)))
    assert restored == spec


@pytest.mark.parametrize(
    "overrides, match",
    [
        (dict(tenant=""), "tenant"),
        (dict(tenant="bad tenant!"), "tenant"),
        (dict(target=""), "target"),
        (dict(generations=0), "generations"),
        (dict(population_size=1), "population_size"),
        (dict(candidate_length=1), "candidate_length"),
        (dict(checkpoint_every=0), "checkpoint_every"),
        (dict(deadline_s=0.0), "deadline_s"),
        (dict(demand=0), "demand"),
        (dict(job_id="no spaces allowed"), "job_id"),
        (dict(seed=-1), "seed"),
        (dict(non_targets=("YBL051C",)), "non-target"),
        (dict(non_targets=("A1", "A1")), "duplicates"),
        (dict(params="not-params"), "params"),
    ],
)
def test_spec_validation_rejects(overrides, match):
    with pytest.raises(ValueError, match=match):
        _spec(**overrides).validate()


def test_spec_from_payload_rejects_wrong_format_and_version():
    payload = _spec().to_payload()
    with pytest.raises(ValueError, match="format"):
        JobSpec.from_payload({**payload, "format": "something-else"})
    with pytest.raises(ValueError, match="version"):
        JobSpec.from_payload({**payload, "version": 99})
    with pytest.raises(ValueError, match="JSON object"):
        JobSpec.from_payload(["not", "a", "dict"])


def test_spec_params_roundtrip_exactly():
    params = GAParams(p_mutate_aa=0.033)
    spec = _spec(params=params)
    restored = JobSpec.from_payload(spec.to_payload())
    assert restored.params == params


def test_tenant_quota_validation():
    with pytest.raises(ValueError, match="max_running"):
        TenantQuota(max_running=0)
    with pytest.raises(ValueError, match="max_demand"):
        TenantQuota(max_running=1, max_demand=0)
    assert TenantQuota().max_demand is None


def test_history_digest_is_deterministic_and_order_insensitive():
    a = {"generations": [{"g": 0, "f": 0.25}], "degradations": []}
    b = {"degradations": [], "generations": [{"f": 0.25, "g": 0}]}
    assert history_digest(a) == history_digest(b)
    assert history_digest(a) != history_digest({**a, "degradations": [1]})


def test_artifact_readers_fail_loudly_on_unknown_job(tmp_path):
    with pytest.raises(FileNotFoundError, match="status"):
        read_status(tmp_path, "job-nope")
    with pytest.raises(FileNotFoundError, match="result"):
        read_result(tmp_path, "job-nope")
    assert list_statuses(tmp_path) == []


def test_write_submit_request_is_fifo_ordered(tmp_path):
    first = write_submit_request(tmp_path, _spec(job_id="job-a"))
    second = write_submit_request(tmp_path, _spec(job_id="job-b"))
    queued = sorted((tmp_path / "queue").glob("*.json"))
    assert [p.name for p in queued] == [first.name, second.name]
    assert json.loads(first.read_text())["job_id"] == "job-a"


def test_job_dir_layout(tmp_path):
    assert job_dir(tmp_path, "job-1") == tmp_path / "jobs" / "job-1"
