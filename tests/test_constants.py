"""Tests for repro.constants."""

import numpy as np

from repro import constants


def test_alphabet_has_20_unique_residues():
    assert len(constants.AMINO_ACIDS) == 20
    assert len(set(constants.AMINO_ACIDS)) == 20
    assert constants.NUM_AMINO_ACIDS == 20


def test_alphabet_is_standard_amino_acids():
    assert set(constants.AMINO_ACIDS) == set("ACDEFGHIKLMNPQRSTVWY")


def test_index_maps_are_inverse():
    for aa, i in constants.AA_TO_INDEX.items():
        assert constants.INDEX_TO_AA[i] == aa
    assert len(constants.AA_TO_INDEX) == 20


def test_yeast_frequencies_are_a_distribution():
    f = constants.YEAST_AA_FREQUENCIES
    assert f.shape == (20,)
    assert np.all(f > 0)
    assert np.isclose(f.sum(), 1.0)


def test_yeast_frequencies_plausible():
    # Leucine and serine are common; tryptophan and cysteine are rare.
    f = constants.YEAST_AA_FREQUENCIES
    idx = constants.AA_TO_INDEX
    assert f[idx["L"]] > f[idx["W"]]
    assert f[idx["S"]] > f[idx["C"]]
    assert f[idx["W"]] < 0.02


def test_uniform_frequencies():
    f = constants.UNIFORM_AA_FREQUENCIES
    assert np.allclose(f, 1.0 / 20)


def test_ga_defaults_sum_to_one():
    total = (
        constants.DEFAULT_P_COPY
        + constants.DEFAULT_P_CROSSOVER
        + constants.DEFAULT_P_MUTATE
    )
    assert np.isclose(total, 1.0)


def test_bgq_geometry():
    assert constants.BGQ_MAX_THREADS == 64
    assert constants.BGQ_RACK_NODES == 1024
    assert constants.BGQ_MIN_JOB_NODES == 64
