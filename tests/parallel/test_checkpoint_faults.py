"""Checkpointing under runtime faults: emergency snapshots when the
parallel runtime dies, and whole-process SIGKILL survival."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.parallel.mp_backend as mp_backend
from repro.checkpoint import CheckpointManager, load_snapshot
from repro.ga.config import GAParams
from repro.ga.engine import InSiPSEngine
from repro.ga.fitness import SerialScoreProvider
from repro.parallel.mp_backend import DeadWorkerError, MultiprocessScoreProvider
from repro.telemetry import MetricsRegistry

pytestmark = pytest.mark.faults


def _dead_worker_entry(
    worker_id, context, task_queue, result_queue, sticky_queue=None
):
    """A worker that exits immediately without taking any work."""
    return


def _engine(provider, seed=21, pop=8, length=16, telemetry=None):
    return InSiPSEngine(
        provider,
        GAParams(),
        population_size=pop,
        candidate_length=length,
        seed=seed,
        telemetry=telemetry,
    )


def test_dead_worker_error_triggers_emergency_snapshot_and_resume(
    tiny_engine, tiny_problem, tmp_path, monkeypatch
):
    """Exhausting the retry budget mid-evaluation must leave a pre-eval
    emergency snapshot behind, and a fresh engine (here: serial — the
    problem fingerprint, not the provider kind, gates resume) must
    continue from it to the same result as an uninterrupted run."""
    target, non_targets = tiny_problem
    generations = 3

    serial_reference = _engine(
        SerialScoreProvider(tiny_engine, target, non_targets)
    ).run(generations)

    monkeypatch.setattr(mp_backend, "_worker_entry", _dead_worker_entry)
    telemetry = MetricsRegistry()
    manager = CheckpointManager(
        tmp_path, every=1, fsync=False, telemetry=telemetry
    )
    provider = MultiprocessScoreProvider(
        tiny_engine,
        target,
        non_targets,
        num_workers=1,
        timeout=30.0,
        poll_interval=0.05,
        max_retries=1,
        fail_fast=True,
    )
    try:
        with pytest.raises(DeadWorkerError):
            _engine(provider, telemetry=telemetry).run(
                generations, checkpoint=manager
            )
    finally:
        provider.close()

    latest = manager.latest()
    assert latest is not None and latest.name.endswith("-emergency.json")
    payload = load_snapshot(latest)
    assert payload["phase"] == "pre_eval"
    assert "DeadWorkerError" in payload["reason"]
    assert telemetry.counter("checkpoint.emergency").value == 1

    resumed_engine = _engine(SerialScoreProvider(tiny_engine, target, non_targets))
    assert resumed_engine.resume(tmp_path) == 0
    resumed = resumed_engine.run(generations)
    assert resumed.best.sequence == serial_reference.best.sequence
    assert (
        resumed.history.to_payload() == serial_reference.history.to_payload()
    )


def test_sigkill_mid_run_resume_smoke():
    """The full crash/resume story: SIGKILL a checkpointing campaign
    mid-generation, resume from its latest snapshot, and match the
    uninterrupted same-seed reference bit-exactly."""
    repo_root = Path(__file__).resolve().parents[2]
    script = repo_root / "scripts" / "resume_smoke.py"
    env = os.environ.copy()
    env["PYTHONPATH"] = str(repo_root / "src")
    proc = subprocess.run(
        [sys.executable, str(script)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"resume smoke failed:\n{proc.stdout}\n{proc.stderr}"
    )
    assert "resume smoke: PASS" in proc.stdout
