"""Fault-injection tests for the parallel runtime's recovery paths.

Each test drives a deterministic failure through the
:class:`~repro.parallel.worker.FaultPlan` hook on the worker context (or
by replacing the worker entry point entirely) and asserts the master's
contract: a crashed worker is respawned and the batch still returns
correct, in-order scores; a worker-side exception surfaces with its
traceback; a stale result from a timed-out epoch is never assigned to a
later batch; an exhausted retry budget raises a diagnostic error naming
the dead workers and the lost items.
"""

import numpy as np
import pytest

import repro.parallel.mp_backend as mp_backend
from repro.ga.fitness import SerialScoreProvider
from repro.parallel.mp_backend import (
    DeadWorkerError,
    MultiprocessScoreProvider,
    WorkerFailureError,
)
from repro.parallel.worker import FaultPlan
from repro.telemetry import MetricsRegistry

pytestmark = pytest.mark.faults


def _seqs(rng, n, size=25):
    return [rng.integers(0, 20, size=size).astype(np.uint8) for _ in range(n)]


def test_crashed_worker_respawned_batch_completes(
    tiny_engine, tiny_problem, rng
):
    """Kill worker 0 mid-batch: the master must detect the death, respawn
    a replacement, re-dispatch the lost item and still return correct,
    in-order scores for the whole batch."""
    target, non_targets = tiny_problem
    telemetry = MetricsRegistry()
    serial = SerialScoreProvider(tiny_engine, target, non_targets)
    seqs = _seqs(rng, 6)
    expected = serial.scores(seqs)
    with MultiprocessScoreProvider(
        tiny_engine,
        target,
        non_targets,
        num_workers=2,
        timeout=60.0,
        poll_interval=0.1,
        faults=FaultPlan(crash_on_item=1, only_worker=0),
        telemetry=telemetry,
    ) as provider:
        out = provider.scores(seqs)
        assert len(out) == len(seqs)
        for got, want in zip(out, expected):
            assert got.target_score == pytest.approx(want.target_score)
            assert got.non_target_scores == pytest.approx(want.non_target_scores)
        assert provider.worker_deaths >= 1
        assert provider.respawns >= 1
        assert provider.retries >= 1
        assert telemetry.counter("parallel.respawns").value >= 1
        assert telemetry.counter("parallel.worker_deaths").value >= 1
        # The replacement got a fresh id beyond the initial worker range.
        assert provider._next_worker_id > provider.num_workers


def test_work_failure_surfaces_worker_traceback(tiny_engine, tiny_problem, rng):
    """A scoring exception inside a worker must be reported with the
    worker-side traceback instead of killing the daemon silently."""
    target, non_targets = tiny_problem
    provider = MultiprocessScoreProvider(
        tiny_engine,
        target,
        non_targets,
        num_workers=1,
        timeout=60.0,
        poll_interval=0.1,
        faults=FaultPlan(fail_on_item=0, only_worker=0),
    )
    try:
        with pytest.raises(WorkerFailureError, match="injected failure") as exc:
            provider.scores(_seqs(rng, 1))
        assert "worker traceback" in str(exc.value)
        assert "RuntimeError" in str(exc.value)
        assert provider.failures == 1
    finally:
        provider.close()


def test_worker_survives_failed_item(tiny_engine, tiny_problem, rng):
    """The worker process itself outlives a scoring exception: after the
    failed batch, the *same* provider scores a later batch correctly
    without respawning anything."""
    target, non_targets = tiny_problem
    provider = MultiprocessScoreProvider(
        tiny_engine,
        target,
        non_targets,
        num_workers=1,
        timeout=60.0,
        poll_interval=0.1,
        faults=FaultPlan(fail_on_item=0, only_worker=0),
    )
    try:
        with pytest.raises(WorkerFailureError):
            provider.scores(_seqs(rng, 1))
        out = provider.scores(_seqs(rng, 2))
        assert len(out) == 2
        assert provider.respawns == 0
    finally:
        provider.close()


def test_stale_epoch_result_dropped_on_reuse(tiny_engine, tiny_problem, rng):
    """A result orphaned by a timed-out batch must never be assigned to a
    later batch whose candidate reuses the same sequence_id — the exact
    score-corruption bug the batch_epoch tag exists to prevent."""
    target, non_targets = tiny_problem
    serial = SerialScoreProvider(tiny_engine, target, non_targets)
    seq_a, seq_b = _seqs(rng, 2)
    provider = MultiprocessScoreProvider(
        tiny_engine,
        target,
        non_targets,
        num_workers=1,
        timeout=0.4,
        poll_interval=0.05,
        max_retries=0,
        fail_fast=True,
        faults=FaultPlan(delay_on_item=0, delay=2.0, only_worker=0),
    )
    try:
        # Batch 1 (epoch 1): the worker sleeps past the timeout, so the
        # master abandons the batch while seq_a's result is in flight.
        with pytest.raises(RuntimeError, match="timed out"):
            provider.scores([seq_a])
        # Batch 2 (epoch 2): sequence_id 0 now means seq_b.  The stale
        # epoch-1 reply for seq_a arrives first and must be dropped.
        provider.timeout = 60.0
        out = provider.scores([seq_b])
        want = serial.scores([seq_b])[0]
        assert out[0].target_score == pytest.approx(want.target_score)
        assert out[0].non_target_scores == pytest.approx(want.non_target_scores)
        assert provider.stale_dropped >= 1
    finally:
        provider.close()


def test_close_drains_orphaned_task_queue(tiny_engine, tiny_problem, rng):
    """After a failed batch abandons WorkItems on the shared task queue,
    close() must pull them off (accounted as stale) instead of letting the
    worker score them ahead of the EndSignal."""
    target, non_targets = tiny_problem
    telemetry = MetricsRegistry()
    provider = MultiprocessScoreProvider(
        tiny_engine,
        target,
        non_targets,
        num_workers=1,
        timeout=60.0,
        poll_interval=0.05,
        # Item 0 fails fast (aborting the batch); item 1 then parks the
        # worker for 2 s, so the rest of the batch is still queued when
        # close() runs.
        faults=FaultPlan(fail_on_item=0, delay_on_item=1, delay=2.0),
        telemetry=telemetry,
    )
    try:
        with pytest.raises(WorkerFailureError):
            provider.scores(_seqs(rng, 8))
    finally:
        provider.close()
    assert provider.stale_dropped >= 1
    assert (
        telemetry.counter("parallel.stale_dropped").value
        == provider.stale_dropped
    )


def _dead_worker_entry(
    worker_id, context, task_queue, result_queue, sticky_queue=None
):
    """A worker that exits immediately without taking any work."""
    return


def test_retry_budget_exhaustion_names_workers_and_items(
    tiny_engine, tiny_problem, monkeypatch, rng
):
    """When respawned workers keep dying, a fail-fast master must give up
    after the retry budget with a diagnostic naming the dead workers and
    the lost sequence ids — not hang for the full timeout."""
    target, non_targets = tiny_problem
    monkeypatch.setattr(mp_backend, "_worker_entry", _dead_worker_entry)
    provider = MultiprocessScoreProvider(
        tiny_engine,
        target,
        non_targets,
        num_workers=1,
        timeout=30.0,
        poll_interval=0.05,
        max_retries=2,
        fail_fast=True,
    )
    try:
        with pytest.raises(DeadWorkerError, match="died") as exc:
            provider.scores(_seqs(rng, 1))
        assert "retry budget" in str(exc.value)
        assert provider.worker_deaths >= 1
        assert provider.respawns >= 1
        assert provider.retries == provider.max_retries
    finally:
        provider.close()


def test_fault_stats_in_runtime_stats(tiny_engine, tiny_problem, rng):
    target, non_targets = tiny_problem
    with MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=1, timeout=60.0
    ) as provider:
        provider.scores(_seqs(rng, 2))
        ft = provider.runtime_stats()["fault_tolerance"]
        assert ft == {
            "worker_deaths": 0,
            "respawns": 0,
            "retries": 0,
            "stale_dropped": 0,
            "failures": 0,
            "degraded_items": 0,
            "degraded_batches": 0,
            "force_killed": 0,
            "breaker": {
                "state": "closed",
                "failures": 0,
                "opens": 0,
                "probes": 0,
            },
            "epoch": 1,
        }


def test_fault_plan_only_targets_named_worker(tiny_engine, tiny_problem, rng):
    """A plan scoped to a worker id that never exists is inert — the
    batch completes with no deaths, failures or retries."""
    target, non_targets = tiny_problem
    with MultiprocessScoreProvider(
        tiny_engine,
        target,
        non_targets,
        num_workers=1,
        timeout=60.0,
        faults=FaultPlan(crash_on_item=0, fail_on_item=1, only_worker=99),
    ) as provider:
        out = provider.scores(_seqs(rng, 3))
        assert len(out) == 3
        assert provider.worker_deaths == 0
        assert provider.failures == 0
