"""Per-item problem binding through the dispatch path.

The scoring fabric (:mod:`repro.fabric`) fuses batches from campaigns
with *different* ``(target, non_targets)`` problems into one dispatch.
These tests cover the plumbing underneath it: ``register_problem`` /
``score_fused`` on the provider, workers resolving a ``WorkItem``'s
``problem_id`` (including self-registration from the item's spec), and
the degradation path scoring fused items serially with the right
problem.
"""

import numpy as np
import pytest

from repro.ga.fitness import SerialScoreProvider
from repro.parallel import MultiprocessScoreProvider
from repro.parallel.messages import WorkItem
from repro.resilience import ChaosSpec


@pytest.fixture()
def two_problems(tiny_world, tiny_problem):
    target, non_targets = tiny_problem
    other = [n for n in tiny_world.non_targets_for(target, limit=12) if n not in non_targets][0]
    other_nts = tiny_world.non_targets_for(other, limit=8)
    return (target, non_targets), (other, other_nts)


def _candidates(rng, n, length=20):
    return [rng.integers(0, 20, size=length).astype(np.uint8) for _ in range(n)]


def test_work_item_problem_validation():
    with pytest.raises(ValueError, match="problem_id must be >= 0"):
        WorkItem(0, b"x", problem_id=-1)
    with pytest.raises(ValueError, match="requires a problem_id"):
        WorkItem(0, b"x", problem=("T", ("A",)))


def test_register_problem_validates(tiny_engine, tiny_problem):
    target, non_targets = tiny_problem
    with MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=1, timeout=120.0
    ) as provider:
        with pytest.raises(ValueError, match="also appears"):
            provider.register_problem(target, [target, *non_targets])
        with pytest.raises(KeyError):
            provider.register_problem("NOT-A-PROTEIN", non_targets)
        a = provider.register_problem(target, non_targets)
        b = provider.register_problem(non_targets[0], [target])
        assert a != b


def test_score_fused_mixed_problems_matches_serial(
    tiny_engine, two_problems, rng
):
    (target, non_targets), (other, other_nts) = two_problems
    arrays = _candidates(rng, 6)
    ref_a = SerialScoreProvider(tiny_engine, target, non_targets).scores(
        [a.copy() for a in arrays]
    )
    ref_b = SerialScoreProvider(tiny_engine, other, other_nts).scores(
        [a.copy() for a in arrays]
    )
    with MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=2, timeout=120.0
    ) as provider:
        pid_a = provider.register_problem(target, non_targets)
        pid_b = provider.register_problem(other, other_nts)
        # Interleave the two problems over the *same* candidate bytes —
        # scores must differ by problem, not by payload.
        fused = [a for pair in zip(arrays, arrays) for a in pair]
        pids = [pid_a, pid_b] * len(arrays)
        got = provider.score_fused(fused, None, pids)
    assert got[0::2] == ref_a
    assert got[1::2] == ref_b


def test_score_fused_validates(tiny_engine, tiny_problem, rng):
    target, non_targets = tiny_problem
    arrays = _candidates(rng, 2)
    with MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=1, timeout=120.0
    ) as provider:
        pid = provider.register_problem(target, non_targets)
        with pytest.raises(ValueError, match="length"):
            provider.score_fused(arrays, None, [pid])
        with pytest.raises(ValueError, match="unregistered"):
            provider.score_fused(arrays, None, [pid, 999])


def test_late_registered_problem_reaches_running_workers(
    tiny_engine, two_problems, rng
):
    # Register the second problem only after the pool has started: the
    # workers must self-register it from the item's spec mid-stream.
    (target, non_targets), (other, other_nts) = two_problems
    arrays = _candidates(rng, 3)
    ref = SerialScoreProvider(tiny_engine, other, other_nts).scores(
        [a.copy() for a in arrays]
    )
    with MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=1, timeout=120.0
    ) as provider:
        provider.scores([a.copy() for a in arrays])  # pool is now running
        pid = provider.register_problem(other, other_nts)
        got = provider.score_fused(arrays, None, [pid] * len(arrays))
    assert got == ref


@pytest.mark.faults
def test_fused_items_degrade_with_their_problem(
    tiny_engine, two_problems, rng
):
    # Permanent pool loss: fused items must be re-scored serially in the
    # master against *their own* problem, not the context default.
    (target, non_targets), (other, other_nts) = two_problems
    arrays = _candidates(rng, 4)
    ref = SerialScoreProvider(tiny_engine, other, other_nts).scores(
        [a.copy() for a in arrays]
    )
    spec = ChaosSpec().with_worker_crash(on_item=0)
    with MultiprocessScoreProvider(
        tiny_engine,
        target,
        non_targets,
        num_workers=1,
        max_retries=1,
        poll_interval=0.05,
        timeout=120.0,
        faults=spec.fault_plan(),
    ) as provider:
        pid = provider.register_problem(other, other_nts)
        got = provider.score_fused(arrays, None, [pid] * len(arrays))
        assert provider.degraded_items > 0
    assert got == ref
