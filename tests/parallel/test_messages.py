"""Tests for the master/worker wire protocol."""

import numpy as np
import pytest

from repro.ga.fitness import ScoreSet
from repro.parallel.messages import EndSignal, WorkFailure, WorkItem, WorkResult


def test_work_item_roundtrip():
    seq = np.array([3, 1, 4, 1, 5], dtype=np.uint8)
    item = WorkItem.from_encoded(7, seq)
    assert item.sequence_id == 7
    assert np.array_equal(item.decode(), seq)


def test_work_item_validation():
    with pytest.raises(ValueError):
        WorkItem(-1, b"x")
    with pytest.raises(ValueError):
        WorkItem(0, b"")


def test_work_item_payload_compact():
    seq = np.arange(10, dtype=np.uint8)
    assert len(WorkItem.from_encoded(0, seq).payload) == 10


def test_work_result_carries_scores():
    scores = ScoreSet(0.5, (0.1, 0.2))
    r = WorkResult(3, 1, scores)
    assert r.scores.max_non_target == 0.2


def test_end_signal_default_reason():
    assert EndSignal().reason == "complete"


def test_batch_epoch_roundtrip():
    seq = np.array([1, 2, 3], dtype=np.uint8)
    item = WorkItem.from_encoded(0, seq, batch_epoch=7)
    assert item.batch_epoch == 7
    assert WorkResult(0, 1, ScoreSet(0.5, ()), batch_epoch=7).batch_epoch == 7
    # Messages from the pre-epoch protocol default to epoch 0.
    assert WorkItem.from_encoded(0, seq).batch_epoch == 0
    assert WorkResult(0, 1, ScoreSet(0.5, ())).batch_epoch == 0


def test_batch_epoch_validation():
    with pytest.raises(ValueError, match="batch_epoch"):
        WorkItem(0, b"x", batch_epoch=-1)


def test_work_failure_carries_traceback():
    failure = WorkFailure(3, 1, "RuntimeError: boom", "Traceback ...", batch_epoch=2)
    assert failure.sequence_id == 3
    assert failure.worker_id == 1
    assert "boom" in failure.error
    assert failure.batch_epoch == 2


def test_messages_picklable():
    import pickle

    item = WorkItem.from_encoded(1, np.array([1, 2], dtype=np.uint8), batch_epoch=4)
    result = WorkResult(1, 0, ScoreSet(0.3, (0.1,)), batch_epoch=4)
    failure = WorkFailure(1, 0, "ValueError: x", "Traceback ...", batch_epoch=4)
    for msg in (item, result, failure, EndSignal()):
        assert pickle.loads(pickle.dumps(msg)) == msg
