"""The shared-memory proteome under the real multiprocessing runtime.

Covers what `tests/ppi/test_shm.py` cannot: workers that attach from a
*different* process, and leak safety when a worker is killed mid-attach —
the master must still unlink the segment on `close()` regardless of what
its children managed to do (the crash tests carry the `faults` marker
like the rest of the fault-injection suite).
"""

import glob
import pickle

import numpy as np
import pytest

from repro.ga.fitness import SerialScoreProvider
from repro.parallel.mp_backend import MultiprocessScoreProvider
from repro.parallel.worker import FaultPlan
from repro.telemetry import MetricsRegistry


def _seqs(rng, n, size=25):
    return [rng.integers(0, 20, size=size).astype(np.uint8) for _ in range(n)]


def _live_segments() -> list[str]:
    return glob.glob("/dev/shm/repro-proteome-*")


def test_shm_provider_matches_serial(tiny_engine, tiny_problem, rng):
    target, non_targets = tiny_problem
    serial = SerialScoreProvider(tiny_engine, target, non_targets)
    seqs = _seqs(rng, 6)
    expected = serial.scores(seqs)
    before = set(_live_segments())
    with MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=2, timeout=120.0
    ) as provider:
        assert provider.share_memory is True
        out = provider.scores(seqs)
        stats = provider.shm_stats()
        assert stats is not None and stats["owner"] is True
    for got, want in zip(out, expected):
        assert got.target_score == pytest.approx(want.target_score)
        assert got.non_target_scores == pytest.approx(want.non_target_scores)
    assert set(_live_segments()) == before  # unlinked on close


def test_shipped_context_is_lightweight(tiny_engine, tiny_problem, rng):
    target, non_targets = tiny_problem
    provider = MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=1, timeout=120.0
    )
    try:
        provider.scores(_seqs(rng, 2))
        shipped = pickle.dumps(provider._ship_context)
        full = pickle.dumps(provider.context)
        assert len(shipped) < len(full)
        assert provider._ship_context.engine is None
        assert provider._ship_context.shm_handle is not None
    finally:
        provider.close()


def test_share_memory_off_ships_engine(tiny_engine, tiny_problem, rng):
    target, non_targets = tiny_problem
    with MultiprocessScoreProvider(
        tiny_engine,
        target,
        non_targets,
        num_workers=1,
        timeout=120.0,
        share_memory=False,
    ) as provider:
        out = provider.scores(_seqs(rng, 2))
        assert provider.shm_stats() is None
        assert provider._ship_context.engine is not None
    assert len(out) == 2


def test_provider_reusable_after_close(tiny_engine, tiny_problem, rng):
    target, non_targets = tiny_problem
    provider = MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=1, timeout=120.0
    )
    seqs = _seqs(rng, 2)
    first = provider.scores(seqs)
    provider.close()
    assert not _live_segments()
    again = provider.scores(_seqs(np.random.default_rng(99), 2))
    provider.close()
    assert len(first) == 2 and len(again) == 2
    assert not _live_segments()


@pytest.mark.faults
def test_no_segment_leak_after_worker_sigkill(tiny_engine, tiny_problem, rng):
    """SIGKILL a worker holding an attachment: the kernel drops its
    mapping, the master respawns and still unlinks on close — no
    `/dev/shm/repro-proteome-*` entry survives."""
    target, non_targets = tiny_problem
    telemetry = MetricsRegistry()
    before = set(_live_segments())
    with MultiprocessScoreProvider(
        tiny_engine,
        target,
        non_targets,
        num_workers=2,
        timeout=60.0,
        poll_interval=0.1,
        faults=FaultPlan(crash_on_item=1, only_worker=0),
        telemetry=telemetry,
    ) as provider:
        serial = SerialScoreProvider(tiny_engine, target, non_targets)
        seqs = _seqs(rng, 6)
        expected = serial.scores(seqs)
        out = provider.scores(seqs)
        for got, want in zip(out, expected):
            assert got.target_score == pytest.approx(want.target_score)
        assert provider.worker_deaths >= 1
    assert set(_live_segments()) == before


@pytest.mark.faults
def test_degraded_serial_fallback_keeps_segment_usable(
    tiny_engine, tiny_problem, rng
):
    """Permanent pool loss degrades to master-serial scoring; the shm
    segment must survive the degradation and still unlink on close."""
    target, non_targets = tiny_problem
    before = set(_live_segments())
    with MultiprocessScoreProvider(
        tiny_engine,
        target,
        non_targets,
        num_workers=1,
        timeout=10.0,
        poll_interval=0.1,
        max_retries=0,
        faults=FaultPlan(crash_on_item=0),
        telemetry=MetricsRegistry(),
    ) as provider:
        out = provider.scores(_seqs(rng, 4))
        assert len(out) == 4
    assert set(_live_segments()) == before
