"""Tests for the worker main loop (in-process, no child processes)."""

import queue

import numpy as np
import pytest

from repro.parallel.messages import EndSignal, WorkItem, WorkResult
from repro.parallel.worker import WorkerContext, score_candidate, worker_loop


@pytest.fixture()
def context(tiny_engine, tiny_problem):
    target, non_targets = tiny_problem
    return WorkerContext(tiny_engine, target, non_targets)


def test_context_validates_names(tiny_engine):
    with pytest.raises(KeyError):
        WorkerContext(tiny_engine, "NOPE", [])
    with pytest.raises(KeyError):
        WorkerContext(tiny_engine, "YBL051C", ["NOPE"])


def test_score_candidate_matches_engine(context, rng):
    seq = rng.integers(0, 20, size=30).astype(np.uint8)
    scores = score_candidate(context, seq)
    assert scores.target_score == pytest.approx(
        context.engine.score(seq, context.target)
    )
    assert len(scores.non_target_scores) == len(context.non_targets)


def test_warm_cache(context):
    context.warm_cache()
    info = context.engine.database.cache_info()
    assert info["entries"] >= len(context.non_targets) + 1


def test_worker_loop_processes_until_end(context, rng):
    task_q = queue.Queue()
    result_q = queue.Queue()
    for i in range(3):
        task_q.put(WorkItem.from_encoded(i, rng.integers(0, 20, size=20).astype(np.uint8)))
    task_q.put(EndSignal())
    processed = worker_loop(0, context, task_q, result_q, poll_timeout=0.05)
    assert processed == 3
    results = [result_q.get_nowait() for _ in range(3)]
    assert {r.sequence_id for r in results} == {0, 1, 2}
    assert all(isinstance(r, WorkResult) for r in results)
    # The END signal is re-enqueued for sibling workers.
    assert isinstance(task_q.get_nowait(), EndSignal)


def test_worker_loop_rejects_garbage(context):
    task_q = queue.Queue()
    result_q = queue.Queue()
    task_q.put("garbage")
    with pytest.raises(TypeError):
        worker_loop(0, context, task_q, result_q, poll_timeout=0.05)


def test_worker_loop_immediate_end(context):
    task_q = queue.Queue()
    result_q = queue.Queue()
    task_q.put(EndSignal())
    assert worker_loop(1, context, task_q, result_q, poll_timeout=0.05) == 0
