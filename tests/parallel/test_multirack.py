"""Tests for the multi-rack (island model) extension."""

import numpy as np
import pytest

from repro.ga.config import GAParams
from repro.ga.fitness import ScoreProvider, ScoreSet
from repro.parallel.multirack import MultiRackGA


class TrivialProvider(ScoreProvider):
    """Target score = fraction of residue 0; easily optimisable."""

    def scores(self, sequences):
        return [
            ScoreSet(float((np.asarray(s) == 0).mean()), (0.1,))
            for s in sequences
        ]


def _ga(racks=3, seed=5, migrate_every=1):
    return MultiRackGA(
        TrivialProvider(),
        GAParams(),
        population_size=8,
        candidate_length=16,
        num_racks=racks,
        seed=seed,
        migrate_every=migrate_every,
    )


def test_runs_all_racks():
    res = _ga().run(5)
    assert len(res.racks) == 3
    assert res.generations == 5
    for rack in res.racks:
        assert len(rack.history) == 5


def test_global_best_is_max_over_racks():
    res = _ga().run(5)
    assert res.best_fitness == max(r.best.fitness for r in res.racks)


def test_migrations_happen():
    res = _ga().run(4)
    assert res.migrations > 0


def test_single_rack_no_migrations():
    res = _ga(racks=1).run(4)
    assert res.migrations == 0
    assert len(res.racks) == 1


def test_migrate_every_reduces_syncs():
    frequent = _ga(seed=9, migrate_every=1).run(6)
    rare = _ga(seed=9, migrate_every=3).run(6)
    assert rare.migrations < frequent.migrations


def test_deterministic():
    a = _ga(seed=4).run(4)
    b = _ga(seed=4).run(4)
    assert a.best_fitness == b.best_fitness
    assert np.array_equal(a.best.encoded, b.best.encoded)


def test_racks_explore_differently():
    res = _ga().run(3)
    first_gen_bests = {r.history.stats[0].best_fitness for r in res.racks}
    assert len(first_gen_bests) > 1  # different initial populations


def test_migration_spreads_elite():
    """After enough migrations every rack's population contains a member
    at (or above) the early global best."""
    res = _ga(seed=2).run(8)
    global_curve = [
        max(r.history.stats[g].best_fitness for r in res.racks)
        for g in range(8)
    ]
    # Per-rack best is monotone-ish thanks to elite injection: the last
    # generation of each rack is at least the global best of generation 0.
    for rack in res.racks:
        assert rack.history.stats[-1].best_fitness >= global_curve[0] - 1e-12


def test_improves_over_time():
    res = _ga(seed=1).run(12)
    assert res.best_fitness > res.racks[0].history.stats[0].best_fitness


def test_validation():
    with pytest.raises(ValueError):
        _ga(racks=0)
    with pytest.raises(ValueError):
        _ga(migrate_every=0)
    with pytest.raises(ValueError):
        _ga().run(0)
