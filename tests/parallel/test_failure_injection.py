"""Failure injection for the parallel runtime.

A worker process that dies (or never starts doing work) must surface as a
clear diagnostic error at the master, not a hang — the behaviour a
cluster operator depends on.  The recovery paths themselves (respawn,
re-dispatch, epoch staleness) are exercised in
``test_fault_tolerance.py``.
"""

import numpy as np
import pytest

import repro.parallel.mp_backend as mp_backend
from repro.parallel.mp_backend import DeadWorkerError, MultiprocessScoreProvider


def _dead_worker_entry(
    worker_id, context, task_queue, result_queue, sticky_queue=None
):
    """A worker that exits immediately without taking any work."""
    return


def test_dead_workers_cause_error_not_hang(
    tiny_engine, tiny_problem, monkeypatch, rng
):
    target, non_targets = tiny_problem
    monkeypatch.setattr(mp_backend, "_worker_entry", _dead_worker_entry)
    provider = MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=1,
        timeout=2.0, poll_interval=0.05, fail_fast=True,
    )
    try:
        with pytest.raises(DeadWorkerError, match="died"):
            provider.scores([rng.integers(0, 20, size=20).astype(np.uint8)])
    finally:
        provider.close()


def test_recovery_after_failed_batch(tiny_engine, tiny_problem, rng):
    """A fresh provider works after a previous provider failed — no shared
    global state is poisoned."""
    target, non_targets = tiny_problem
    provider = MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=1, timeout=120.0
    )
    try:
        out = provider.scores([rng.integers(0, 20, size=20).astype(np.uint8)])
        assert len(out) == 1
    finally:
        provider.close()


def test_close_before_use_is_safe(tiny_engine, tiny_problem):
    target, non_targets = tiny_problem
    provider = MultiprocessScoreProvider(tiny_engine, target, non_targets)
    provider.close()  # never started — must be a no-op


def test_cached_scores_survive_worker_shutdown(tiny_engine, tiny_problem, rng):
    """After close(), previously scored sequences still resolve from the
    master-side cache without respawning workers."""
    target, non_targets = tiny_problem
    provider = MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=1, timeout=120.0
    )
    seq = rng.integers(0, 20, size=20).astype(np.uint8)
    try:
        first = provider.scores([seq])[0]
    finally:
        provider.close()
    again = provider.scores([seq.copy()])[0]
    assert again.target_score == first.target_score
    assert not provider._workers  # cache hit: nothing respawned
