"""Tests for the elastic pool control loop.

Policy and controller tests are pure (no processes); the integration
tests at the bottom drive a real :class:`MultiprocessScoreProvider` and
include the regression tests for the dispatch/telemetry bugfix sweep:
the ``parallel.queue_depth`` gauge must track the *live* backlog (not be
set once to the batch size) and the sticky backlog cap must divide by
the live pool (not the configured ``num_workers``).
"""

import numpy as np
import pytest

from repro.ga.fitness import SerialScoreProvider
from repro.parallel.elastic import (
    SCALING_POLICIES,
    ElasticController,
    FixedScaling,
    LatencyTargetScaling,
    PoolSnapshot,
    QueueDepthScaling,
    make_scaling_policy,
)
from repro.parallel.mp_backend import MultiprocessScoreProvider
from repro.telemetry import MetricsRegistry


def snap(
    live=2,
    backlog=0,
    outstanding=0,
    ewma=0.0,
    max_sticky=0,
    batch=10,
) -> PoolSnapshot:
    return PoolSnapshot(
        live_workers=live,
        backlog=backlog,
        outstanding=outstanding,
        latency_ewma_s=ewma,
        max_sticky_backlog=max_sticky,
        batch_size=batch,
    )


class FakeClock:
    """Steppable monotonic clock for cooldown tests (no real sleeps)."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, s: float) -> None:
        self.t += s


class TestPolicies:
    def test_bounds_validation(self):
        with pytest.raises(ValueError, match="min_workers"):
            FixedScaling(0, 4)
        with pytest.raises(ValueError, match="max_workers"):
            FixedScaling(4, 2)
        with pytest.raises(ValueError, match="items_per_worker"):
            QueueDepthScaling(1, 4, items_per_worker=0)
        with pytest.raises(ValueError, match="target_s"):
            LatencyTargetScaling(1, 4, target_s=0.0)

    def test_clamp(self):
        policy = FixedScaling(2, 5)
        assert policy.clamp(0) == 2
        assert policy.clamp(3) == 3
        assert policy.clamp(99) == 5

    def test_fixed_never_resizes_never_chunks(self):
        policy = FixedScaling(1, 8)
        assert policy.desired_workers(snap(live=3, backlog=100)) == 3
        assert policy.chunk_limit(snap(live=3, backlog=100)) is None

    def test_queue_depth_sizes_to_backlog(self):
        policy = QueueDepthScaling(1, 8, items_per_worker=4)
        assert policy.desired_workers(snap(live=2, backlog=16)) == 4
        assert policy.desired_workers(snap(live=4, backlog=2)) == 1
        assert policy.desired_workers(snap(live=2, backlog=100)) == 8  # clamped

    def test_queue_depth_skew_asks_for_one_more(self):
        policy = QueueDepthScaling(1, 8, items_per_worker=4)
        base = policy.desired_workers(snap(live=4, backlog=8))
        # One sticky queue holds 5 of 8 items (> 2x the fair share of 2):
        # the policy asks for one extra worker as a stealing target.
        skewed = policy.desired_workers(snap(live=4, backlog=8, max_sticky=5))
        assert skewed == base + 1

    def test_latency_target_holds_until_first_ewma(self):
        policy = LatencyTargetScaling(1, 8, target_s=0.25)
        assert policy.desired_workers(snap(live=3, backlog=50, ewma=0.0)) == 3
        assert (
            policy.chunk_limit(snap(live=3, ewma=0.0))
            == 3 * policy.bootstrap_chunk
        )

    def test_latency_target_sizes_pool_to_drain_time(self):
        policy = LatencyTargetScaling(1, 8, target_s=0.5)
        # 20 items x 0.1s = 2s of work; 4 workers drain it in 0.5s.
        assert policy.desired_workers(snap(live=2, backlog=20, ewma=0.1)) == 4
        # 2 items x 0.01s: one worker is plenty.
        assert policy.desired_workers(snap(live=4, backlog=2, ewma=0.01)) == 1

    def test_latency_target_chunk_window(self):
        policy = LatencyTargetScaling(1, 8, target_s=0.5, max_chunk=16)
        assert policy.per_worker_window(0.1) == 5  # 0.5/0.1
        assert policy.per_worker_window(10.0) == 1  # floor
        assert policy.per_worker_window(0.001) == 16  # max_chunk cap
        assert policy.chunk_limit(snap(live=3, ewma=0.1)) == 15

    def test_make_scaling_policy_names_and_passthrough(self):
        for name in SCALING_POLICIES:
            policy = make_scaling_policy(name, min_workers=1, max_workers=4)
            assert policy.name == name
        instance = FixedScaling(2, 3)
        assert (
            make_scaling_policy(instance, min_workers=1, max_workers=9)
            is instance
        )
        with pytest.raises(ValueError, match="unknown scaling policy"):
            make_scaling_policy("bogus", min_workers=1, max_workers=4)


class TestController:
    def test_ewma_seeds_then_smooths(self):
        ctl = ElasticController(FixedScaling(1, 4), ewma_alpha=0.5)
        assert ctl.observe_latency(1.0) == 1.0  # first value seeds
        assert ctl.observe_latency(2.0) == pytest.approx(1.5)
        assert ctl.latency_ewma_s == pytest.approx(1.5)

    def test_decide_clamps_policy(self):
        ctl = ElasticController(QueueDepthScaling(2, 3, items_per_worker=1))
        assert ctl.decide(snap(live=2, backlog=100)) == 3
        assert ctl.decide(snap(live=3, backlog=0)) == 2

    def test_cooldown_suppresses_thrash(self):
        clock = FakeClock()
        ctl = ElasticController(
            QueueDepthScaling(1, 8, items_per_worker=1),
            cooldown_s=10.0,
            clock=clock,
        )
        assert ctl.decide(snap(live=1, backlog=4)) == 4  # resize starts cooldown
        assert ctl.decide(snap(live=4, backlog=1)) == 4  # suppressed: hold
        assert ctl.suppressed == 1
        clock.advance(11.0)
        assert ctl.decide(snap(live=4, backlog=1)) == 1  # cooldown expired
        # A no-op decision never burns the cooldown window.
        assert ctl.decide(snap(live=1, backlog=1)) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="cooldown_s"):
            ElasticController(FixedScaling(1, 2), cooldown_s=-1.0)
        with pytest.raises(ValueError, match="ewma_alpha"):
            ElasticController(FixedScaling(1, 2), ewma_alpha=0.0)

    def test_stats_shape(self):
        ctl = ElasticController(LatencyTargetScaling(1, 4))
        ctl.decide(snap())
        stats = ctl.stats()
        assert stats["policy"] == "latency-target"
        assert stats["min_workers"] == 1
        assert stats["max_workers"] == 4
        assert stats["decisions"] == 1


class TestProviderIntegration:
    """Real worker processes under elastic policies."""

    def test_queue_depth_gauge_tracks_and_decays(
        self, tiny_engine, tiny_problem, rng
    ):
        # Regression: the gauge used to be set once to len(arrays) at
        # dispatch and never touched again — it must now decay to 0 as
        # the batch drains.
        target, non_targets = tiny_problem
        registry = MetricsRegistry()
        with MultiprocessScoreProvider(
            tiny_engine,
            target,
            non_targets,
            num_workers=2,
            timeout=120.0,
            telemetry=registry,
        ) as provider:
            seqs = [rng.integers(0, 20, size=25).astype(np.uint8) for _ in range(6)]
            provider.scores(seqs)
        gauge = registry.gauge("parallel.queue_depth")
        assert gauge.value == 0.0  # drained
        assert gauge.max == 6.0  # peaked at the batch size
        assert gauge.updates > 2  # actually tracked, not set-and-forget

    def test_sticky_cap_divides_by_live_pool(self, tiny_engine, tiny_problem):
        # Regression: the cap used to divide by the configured
        # num_workers; with half the pool dead that starves the sticky
        # lanes of the survivors.
        target, non_targets = tiny_problem
        provider = MultiprocessScoreProvider(
            tiny_engine, target, non_targets, num_workers=4
        )
        try:
            provider._workers = {0: object(), 1: object()}
            assert provider._sticky_cap(16) == 16  # 2 * 16 / 2 live
            provider._workers = {0: object()}
            assert provider._sticky_cap(16) == 32  # 2 * 16 / 1 live
            provider._workers = {}
            assert provider._sticky_cap(16) == 32  # floor guard, no div-by-0
        finally:
            provider._workers = {}
            provider.close()

    def test_elastic_matches_serial(self, tiny_engine, tiny_problem, rng):
        target, non_targets = tiny_problem
        serial = SerialScoreProvider(tiny_engine, target, non_targets)
        seqs = [rng.integers(0, 20, size=25).astype(np.uint8) for _ in range(8)]
        with MultiprocessScoreProvider(
            tiny_engine,
            target,
            non_targets,
            num_workers=2,
            min_workers=1,
            max_workers=3,
            scaling="queue-depth",
            timeout=120.0,
        ) as provider:
            elastic_scores = provider.scores(seqs)
            stats = provider.elastic_stats()
            assert stats["policy"] == "queue-depth"
            assert stats["decisions"] > 0
        for e, s in zip(elastic_scores, serial.scores(seqs)):
            assert e.target_score == s.target_score
            assert e.non_target_scores == s.non_target_scores

    def test_runtime_stats_include_elastic(self, tiny_engine, tiny_problem, rng):
        target, non_targets = tiny_problem
        with MultiprocessScoreProvider(
            tiny_engine, target, non_targets, num_workers=1, timeout=120.0
        ) as provider:
            provider.scores([rng.integers(0, 20, size=20).astype(np.uint8)])
            stats = provider.runtime_stats()["elastic"]
            assert stats["policy"] == "fixed"
            assert stats["live_workers"] == 1
            assert stats["scale_ups"] == 0
            assert stats["scale_downs"] == 0

    def test_scaling_bounds_validation(self, tiny_engine, tiny_problem):
        target, non_targets = tiny_problem
        with pytest.raises(ValueError, match="unknown scaling policy"):
            MultiprocessScoreProvider(
                tiny_engine, target, non_targets, num_workers=1, scaling="bogus"
            )
        with pytest.raises(ValueError, match="max_workers"):
            MultiprocessScoreProvider(
                tiny_engine,
                target,
                non_targets,
                num_workers=1,
                min_workers=4,
                max_workers=2,
            )
