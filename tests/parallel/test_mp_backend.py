"""Tests for the multiprocessing score provider (spawns real processes)."""

import numpy as np
import pytest

from repro.ga.fitness import SerialScoreProvider
from repro.parallel.mp_backend import MultiprocessScoreProvider


@pytest.fixture()
def mp_provider(tiny_engine, tiny_problem):
    target, non_targets = tiny_problem
    provider = MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=2, timeout=120.0
    )
    yield provider
    provider.close()


def test_matches_serial_provider(mp_provider, tiny_engine, tiny_problem, rng):
    target, non_targets = tiny_problem
    serial = SerialScoreProvider(tiny_engine, target, non_targets)
    seqs = [rng.integers(0, 20, size=25).astype(np.uint8) for _ in range(6)]
    parallel_scores = mp_provider.scores(seqs)
    serial_scores = serial.scores(seqs)
    for p, s in zip(parallel_scores, serial_scores):
        assert p.target_score == pytest.approx(s.target_score)
        assert p.non_target_scores == pytest.approx(s.non_target_scores)


def test_results_in_input_order(mp_provider, rng):
    seqs = [rng.integers(0, 20, size=25).astype(np.uint8) for _ in range(8)]
    first = mp_provider.scores(seqs)
    again = mp_provider.scores(seqs)  # all cached now
    for a, b in zip(first, again):
        assert a.target_score == b.target_score
    assert mp_provider.cache_stats["hits"] == len(seqs)


def test_duplicate_sequences_in_batch(mp_provider, rng):
    seq = rng.integers(0, 20, size=25).astype(np.uint8)
    out = mp_provider.scores([seq, seq.copy(), seq.copy()])
    assert out[0].target_score == out[1].target_score == out[2].target_score


def test_close_idempotent(mp_provider, rng):
    mp_provider.scores([rng.integers(0, 20, size=10).astype(np.uint8)])
    mp_provider.close()
    mp_provider.close()


def test_workers_lazy(tiny_engine, tiny_problem):
    target, non_targets = tiny_problem
    provider = MultiprocessScoreProvider(tiny_engine, target, non_targets, num_workers=1)
    assert not provider._workers  # nothing spawned before first use
    provider.close()


def test_validation(tiny_engine, tiny_problem):
    target, non_targets = tiny_problem
    with pytest.raises(ValueError):
        MultiprocessScoreProvider(tiny_engine, target, non_targets, num_workers=0)


def test_context_manager_reaps_workers(tiny_engine, tiny_problem, rng):
    target, non_targets = tiny_problem
    with MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=1, timeout=120.0
    ) as provider:
        provider.scores([rng.integers(0, 20, size=25).astype(np.uint8)])
        assert provider._workers
    assert not provider._workers
    assert provider.closed


def test_context_manager_reaps_on_exception(tiny_engine, tiny_problem, rng):
    target, non_targets = tiny_problem
    provider = MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=1, timeout=120.0
    )
    with pytest.raises(RuntimeError, match="boom"):
        with provider:
            provider.scores([rng.integers(0, 20, size=25).astype(np.uint8)])
            raise RuntimeError("boom")
    assert not provider._workers
    assert provider.closed


def test_worker_stats_recorded(mp_provider, rng):
    seqs = [rng.integers(0, 20, size=25).astype(np.uint8) for _ in range(6)]
    mp_provider.scores(seqs)
    stats = mp_provider.worker_stats()
    assert stats  # at least one worker reported
    assert sum(int(w["items"]) for w in stats.values()) == 6
    assert all(w["busy_s"] >= 0.0 for w in stats.values())
    runtime = mp_provider.runtime_stats()
    assert runtime["dispatched"] == 6
    assert runtime["batches"] == 1
    assert runtime["cache"]["misses"] == 6


class TestDeltaAndSticky:
    """Delta re-scoring and sticky dispatch through real worker processes."""

    def test_delta_hits_flow_back_to_master(self, tiny_engine, tiny_problem, rng):
        from repro.ppi.delta import mutation_provenance

        target, non_targets = tiny_problem
        with MultiprocessScoreProvider(
            tiny_engine, target, non_targets, num_workers=2, timeout=120.0
        ) as provider:
            parent = rng.integers(0, 20, size=30).astype(np.uint8)
            provider.scores([parent])
            child = parent.copy()
            child[10] = (child[10] + 3) % 20
            prov = mutation_provenance(parent, [10])
            with_delta = provider.scores_with_provenance([child], [prov])
            stats = provider.delta_stats()
            assert stats["hits"] >= 1
            assert stats["rows_rescored"] < stats["rows_total"]
            assert stats["sticky_routed"] >= 1

            serial = SerialScoreProvider(
                tiny_engine, target, non_targets, use_delta=False
            )
            (expected,) = serial.scores([child])
            assert with_delta[0].target_score == expected.target_score
            assert with_delta[0].non_target_scores == expected.non_target_scores

    def test_unknown_parent_falls_back_never_wrong(
        self, tiny_engine, tiny_problem, rng
    ):
        from repro.ppi.delta import mutation_provenance

        target, non_targets = tiny_problem
        with MultiprocessScoreProvider(
            tiny_engine, target, non_targets, num_workers=2, timeout=120.0
        ) as provider:
            parent = rng.integers(0, 20, size=28).astype(np.uint8)
            child = parent.copy()
            child[5] = (child[5] + 1) % 20
            prov = mutation_provenance(parent, [5])
            # Parent never scored: workers must fall back to the full sweep.
            (scored,) = provider.scores_with_provenance([child], [prov])
            stats = provider.delta_stats()
            assert stats["fallbacks"] >= 1
            serial = SerialScoreProvider(
                tiny_engine, target, non_targets, use_delta=False
            )
            (expected,) = serial.scores([child])
            assert scored.target_score == expected.target_score

    def test_use_delta_false_ships_no_provenance(
        self, tiny_engine, tiny_problem, rng
    ):
        from repro.ppi.delta import mutation_provenance

        target, non_targets = tiny_problem
        with MultiprocessScoreProvider(
            tiny_engine,
            target,
            non_targets,
            num_workers=2,
            timeout=120.0,
            use_delta=False,
        ) as provider:
            parent = rng.integers(0, 20, size=25).astype(np.uint8)
            provider.scores([parent])
            child = parent.copy()
            child[3] = (child[3] + 2) % 20
            provider.scores_with_provenance(
                [child], [mutation_provenance(parent, [3])]
            )
            stats = provider.delta_stats()
            assert stats == {
                "hits": 0,
                "fallbacks": 0,
                "rows_rescored": 0,
                "rows_total": 0,
                "sticky_routed": 0,
            }

    def test_runtime_stats_include_delta(self, mp_provider, rng):
        mp_provider.scores([rng.integers(0, 20, size=20).astype(np.uint8)])
        stats = mp_provider.runtime_stats()
        assert "delta" in stats
        assert set(stats["delta"]) == {
            "hits",
            "fallbacks",
            "rows_rescored",
            "rows_total",
            "sticky_routed",
        }
