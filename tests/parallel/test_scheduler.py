"""Tests for on-demand and static scheduling."""

import numpy as np
import pytest

from repro.ga.fitness import ScoreSet
from repro.parallel.messages import WorkItem, WorkResult
from repro.parallel.scheduler import OnDemandScheduler, StaticScheduler


def _items(n):
    return [
        WorkItem.from_encoded(i, np.array([i % 20 + 1], dtype=np.uint8))
        for i in range(n)
    ]


def _result(item, worker):
    return WorkResult(item.sequence_id, worker, ScoreSet(0.5, ()))


class TestOnDemand:
    def test_hands_out_in_order_to_whoever_asks(self):
        sched = OnDemandScheduler(_items(3))
        a = sched.next_for(5)
        b = sched.next_for(2)
        assert a.sequence_id == 0
        assert b.sequence_id == 1

    def test_exhausts(self):
        sched = OnDemandScheduler(_items(2))
        sched.next_for(0)
        sched.next_for(0)
        assert sched.next_for(0) is None

    def test_done_after_all_results(self):
        items = _items(2)
        sched = OnDemandScheduler(items)
        i0 = sched.next_for(0)
        i1 = sched.next_for(1)
        assert not sched.done
        sched.record(_result(i0, 0))
        sched.record(_result(i1, 1))
        assert sched.done
        assert sched.outstanding == 0

    def test_results_in_order(self):
        items = _items(3)
        sched = OnDemandScheduler(items)
        handed = [(sched.next_for(w), w) for w in (2, 0, 1)]
        for item, w in reversed(handed):
            sched.record(_result(item, w))
        ordered = sched.results_in_order()
        assert [r.sequence_id for r in ordered] == [0, 1, 2]

    def test_results_in_order_incomplete_raises(self):
        sched = OnDemandScheduler(_items(2))
        sched.next_for(0)
        with pytest.raises(RuntimeError, match="missing"):
            sched.results_in_order()

    def test_duplicate_result_rejected(self):
        sched = OnDemandScheduler(_items(1))
        item = sched.next_for(0)
        sched.record(_result(item, 0))
        with pytest.raises(ValueError, match="duplicate"):
            sched.record(_result(item, 0))

    def test_result_never_dispatched_rejected(self):
        sched = OnDemandScheduler(_items(2))
        with pytest.raises(ValueError, match="never dispatched"):
            sched.record(_result(_items(2)[0], 0))

    def test_result_wrong_worker_rejected(self):
        sched = OnDemandScheduler(_items(1))
        item = sched.next_for(0)
        with pytest.raises(ValueError, match="worker"):
            sched.record(_result(item, 3))

    def test_unknown_sequence_rejected(self):
        sched = OnDemandScheduler(_items(1))
        with pytest.raises(KeyError):
            sched.record(WorkResult(99, 0, ScoreSet(0.5, ())))

    def test_duplicate_ids_rejected(self):
        items = _items(2)
        items[1] = WorkItem(0, b"\x01")
        with pytest.raises(ValueError, match="duplicate"):
            OnDemandScheduler(items)


class TestRequeue:
    """Fault-tolerance surface: a dead worker's items go back in the pool."""

    def test_requeue_lost_readmits_at_front(self):
        items = _items(3)
        sched = OnDemandScheduler(items)
        lost_item = sched.next_for(0)
        assert sched.requeue_lost(0) == [lost_item.sequence_id]
        assert sched.outstanding == 0
        assert sched.retries(lost_item.sequence_id) == 1
        # The recovered item is the critical path: handed out before the
        # untouched tail of the queue.
        assert sched.next_for(1).sequence_id == lost_item.sequence_id

    def test_requeue_lost_only_dead_workers_items(self):
        sched = OnDemandScheduler(_items(3))
        i0 = sched.next_for(0)
        i1 = sched.next_for(1)
        assert sched.requeue_lost(0) == [i0.sequence_id]
        assert sched.outstanding == 1  # worker 1's item untouched
        sched.record(_result(i1, 1))

    def test_duplicate_after_requeue_dropped_not_raised(self):
        sched = OnDemandScheduler(_items(1))
        item = sched.next_for(0)
        sched.requeue_lost(0)
        redispatched = sched.next_for(1)
        assert sched.record(_result(redispatched, 1)) is True
        # The dead worker's reply arrives late: dropped, not an error.
        assert sched.record(_result(item, 1)) is False
        assert sched.done

    def test_requeue_unknown_worker_is_noop(self):
        sched = OnDemandScheduler(_items(2))
        sched.next_for(0)
        assert sched.requeue_lost(99) == []
        assert sched.outstanding == 1

    def test_static_cannot_requeue(self):
        sched = StaticScheduler(_items(2), num_workers=2)
        sched.next_for(0)
        with pytest.raises(NotImplementedError):
            sched.requeue_lost(0)


class TestStatic:
    def test_round_robin_assignment(self):
        sched = StaticScheduler(_items(6), num_workers=2)
        assert [sched.next_for(0).sequence_id for _ in range(3)] == [0, 2, 4]
        assert [sched.next_for(1).sequence_id for _ in range(3)] == [1, 3, 5]

    def test_worker_cannot_steal(self):
        sched = StaticScheduler(_items(2), num_workers=2)
        sched.next_for(0)
        assert sched.next_for(0) is None  # worker 0's slice is exhausted
        assert sched.next_for(1) is not None

    def test_unknown_worker(self):
        sched = StaticScheduler(_items(2), num_workers=2)
        with pytest.raises(KeyError):
            sched.next_for(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticScheduler(_items(2), num_workers=0)

    def test_imbalance_vs_ondemand(self):
        """The paper's argument for on-demand dispatch: with heterogeneous
        costs, static round-robin leaves some workers idle.  Simulate two
        workers, one slow item first: on-demand lets worker 1 take all the
        remaining cheap items; static forces worker 0 to hold half of them.
        """
        costs = [10.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        items = _items(6)

        def makespan(sched_cls, **kw):
            sched = sched_cls(items, **kw) if kw else sched_cls(items)
            t = [0.0, 0.0]
            # Greedy event loop: whichever worker is free first asks next.
            while True:
                w = int(np.argmin(t))
                item = sched.next_for(w)
                if item is None:
                    other = 1 - w
                    item = sched.next_for(other)
                    if item is None:
                        break
                    w = other
                t[w] += costs[item.sequence_id]
            return max(t)

        ondemand = makespan(OnDemandScheduler)
        static = makespan(StaticScheduler, num_workers=2)
        assert ondemand <= static
        assert ondemand == 10.0  # worker 1 absorbs all cheap items
        assert static == 12.0  # worker 0 stuck with items 0, 2, 4


class TestSticky:
    def test_preferred_items_go_to_their_worker_first(self):
        from repro.parallel.scheduler import StickyScheduler

        items = _items(4)
        sched = StickyScheduler(items, preferred={0: 1, 2: 1})
        # Worker 1 drains its sticky queue before the general pool.
        assert sched.next_for(1).sequence_id == 0
        assert sched.next_for(1).sequence_id == 2
        assert sched.next_for(1).sequence_id == 1  # then the general pool

    def test_unpreferred_worker_takes_general_pool(self):
        from repro.parallel.scheduler import StickyScheduler

        items = _items(3)
        sched = StickyScheduler(items, preferred={0: 7})
        assert sched.next_for(3).sequence_id == 1
        assert sched.next_for(3).sequence_id == 2

    def test_idle_worker_steals_rather_than_starve(self):
        from repro.parallel.scheduler import StickyScheduler

        items = _items(4)
        sched = StickyScheduler(items, preferred={i: 0 for i in range(4)})
        # Everything is parked for worker 0, but worker 1 must not idle.
        stolen = sched.next_for(1)
        assert stolen is not None
        # Steal comes from the most loaded sibling queue.
        assert sched.sticky_backlog(0) == 3
        own = sched.next_for(0)
        assert own is not None and own.sequence_id != stolen.sequence_id

    def test_no_preference_behaves_like_ondemand(self):
        from repro.parallel.scheduler import StickyScheduler

        items = _items(3)
        sched = StickyScheduler(items)
        assert [sched.next_for(w).sequence_id for w in (5, 2, 5)] == [0, 1, 2]
        assert sched.next_for(0) is None

    def test_requeue_lost_goes_to_general_pool(self):
        from repro.parallel.scheduler import StickyScheduler

        items = _items(2)
        sched = StickyScheduler(items, preferred={0: 0})
        lost = sched.next_for(0)
        assert sched.requeue_lost(0) == [lost.sequence_id]
        # The recovered item is handed to whoever asks next, preference or
        # not (its preferred worker just died).
        assert sched.next_for(3).sequence_id == lost.sequence_id

    def test_all_items_complete_under_mixed_dispatch(self):
        from repro.parallel.scheduler import StickyScheduler

        items = _items(6)
        sched = StickyScheduler(items, preferred={0: 0, 1: 0, 2: 1})
        while not sched.done:
            for w in (0, 1, 2):
                item = sched.next_for(w)
                if item is not None:
                    sched.record(_result(item, w))
        assert [r.sequence_id for r in sched.results_in_order()] == list(range(6))

    def test_sticky_backlogs_reports_only_nonempty_queues(self):
        from repro.parallel.scheduler import StickyScheduler

        items = _items(5)
        sched = StickyScheduler(items, preferred={0: 0, 1: 0, 2: 0, 3: 1})
        assert sched.sticky_backlogs() == {0: 3, 1: 1}
        sched.next_for(1)  # drains worker 1's only parked item
        assert sched.sticky_backlogs() == {0: 3}

    def test_rebalance_moves_departed_workers_items_to_general_pool(self):
        from repro.parallel.scheduler import StickyScheduler

        items = _items(4)
        sched = StickyScheduler(items, preferred={0: 0, 1: 0, 2: 1})
        # Worker 0 leaves the pool with two items still parked for it.
        assert sched.rebalance(live_workers={1}) == 2
        assert sched.sticky_backlogs() == {1: 1}  # worker 1 keeps item 2
        # The orphaned items are dispatchable again — nothing is trapped.
        seen = set()
        while True:
            item = sched.next_for(1)
            if item is None:
                break
            seen.add(item.sequence_id)
        assert seen == {0, 1, 2, 3}

    def test_rebalance_with_all_workers_live_is_a_no_op(self):
        from repro.parallel.scheduler import StickyScheduler

        items = _items(3)
        sched = StickyScheduler(items, preferred={0: 0, 1: 1})
        assert sched.rebalance(live_workers={0, 1}) == 0
        assert sched.sticky_backlogs() == {0: 1, 1: 1}
