"""Shared fixtures.

World construction is the expensive part of the suite, so the tiny world
(and objects derived from it) are session-scoped; tests must treat them as
read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ga.fitness import SerialScoreProvider
from repro.synthetic import get_profile


@pytest.fixture(scope="session")
def tiny_profile():
    return get_profile("tiny")


@pytest.fixture(scope="session")
def tiny_world(tiny_profile):
    return tiny_profile.build_world()


@pytest.fixture(scope="session")
def tiny_engine(tiny_world):
    return tiny_world.engine


@pytest.fixture(scope="session")
def tiny_problem(tiny_world):
    """(target, non_targets) for the canonical tiny design problem."""
    target = "YBL051C"
    non_targets = tiny_world.non_targets_for(target, limit=8)
    return target, non_targets


@pytest.fixture()
def tiny_provider(tiny_engine, tiny_problem):
    target, non_targets = tiny_problem
    return SerialScoreProvider(tiny_engine, target, non_targets)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
