"""Tests for the pluggable similarity-kernel layer.

The chunked numpy kernel is the bit-exact reference; the batched kernel
must reproduce it exactly (the padding rows between stacked sequences are
discarded, per-row float64 summation order is unchanged) while sweeping a
whole population in a handful of stacked passes.
"""

import numpy as np
import pytest

from repro.ppi.database import PipeDatabase
from repro.ppi.graph import InteractionGraph
from repro.ppi.kernels import (
    DEFAULT_KERNEL,
    BatchedNumpyKernel,
    ChunkedNumpyKernel,
    SimilarityKernel,
    available_kernels,
    get_kernel,
    register_kernel,
)
from repro.sequences.encoding import decode
from repro.sequences.protein import Protein
from repro.substitution import PAM120

W = 3
THRESHOLD = 15.0


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(7)
    proteins = [
        Protein(f"P{i}", decode(rng.integers(0, 20, size=int(n)).astype(np.uint8)))
        for i, n in enumerate(rng.integers(8, 30, size=8))
    ]
    proteins.append(Protein("SHORT", "AC"))  # shorter than the window
    graph = InteractionGraph(proteins, [("P0", "P1"), ("P2", "P3")])
    return PipeDatabase(graph, PAM120, W, THRESHOLD, kernel="chunked")


def _population(rng, n, lo=4, hi=40):
    return [
        rng.integers(0, 20, size=int(length)).astype(np.uint8)
        for length in rng.integers(lo, hi, size=n)
    ]


# ---------------------------------------------------------------- registry


def test_registry_lists_reference_first():
    names = available_kernels()
    assert names[0] == ChunkedNumpyKernel.name == "chunked"
    assert BatchedNumpyKernel.name in names


def test_default_kernel_is_batched():
    assert DEFAULT_KERNEL == "batched"
    assert isinstance(get_kernel(None), BatchedNumpyKernel)


def test_get_kernel_by_name_and_passthrough():
    assert isinstance(get_kernel("chunked"), ChunkedNumpyKernel)
    instance = BatchedNumpyKernel(batch_residues=64)
    assert get_kernel(instance) is instance


def test_get_kernel_unknown_name():
    with pytest.raises(ValueError, match="unknown similarity kernel"):
        get_kernel("does-not-exist")


def test_register_kernel_requires_concrete_name():
    class Nameless(ChunkedNumpyKernel):
        name = SimilarityKernel.name

    with pytest.raises(ValueError):
        register_kernel(Nameless)


def test_register_kernel_decorator_roundtrip():
    @register_kernel
    class Doubled(ChunkedNumpyKernel):
        name = "test-doubled"

    try:
        assert "test-doubled" in available_kernels()
        assert isinstance(get_kernel("test-doubled"), Doubled)
    finally:
        from repro.ppi import kernels

        kernels._REGISTRY.pop("test-doubled", None)


# ------------------------------------------------------------- bit-exact


def test_batched_sweep_matches_chunked(database):
    rng = np.random.default_rng(11)
    seqs = _population(rng, 12)
    chunked = ChunkedNumpyKernel()
    batched = BatchedNumpyKernel()
    expected = [chunked.sweep(database, s) for s in seqs]
    got = batched.sweep_batch(database, seqs)
    assert len(got) == len(expected)
    for e, g in zip(expected, got):
        assert g.dtype == e.dtype
        assert np.array_equal(e, g)


def test_batched_grouping_limits_do_not_change_results(database):
    rng = np.random.default_rng(13)
    seqs = _population(rng, 10)
    reference = BatchedNumpyKernel().sweep_batch(database, seqs)
    # batch_residues=8 forces nearly one group per sequence; batch_elements
    # tiny enough to cap the stack via the element bound instead.
    for kernel in (
        BatchedNumpyKernel(batch_residues=8),
        BatchedNumpyKernel(batch_elements=512),
    ):
        split = kernel.sweep_batch(database, seqs)
        for r, s in zip(reference, split):
            assert np.array_equal(r, s)


def test_batched_single_sequence_equals_sweep(database):
    rng = np.random.default_rng(17)
    seq = rng.integers(0, 20, size=23).astype(np.uint8)
    batched = BatchedNumpyKernel()
    (only,) = batched.sweep_batch(database, [seq])
    assert np.array_equal(only, batched.sweep(database, seq))


def test_sweep_batch_empty(database):
    assert BatchedNumpyKernel().sweep_batch(database, []) == []


def test_default_sweep_batch_loops(database):
    rng = np.random.default_rng(19)
    seqs = _population(rng, 4)
    chunked = ChunkedNumpyKernel()
    got = chunked.sweep_batch(database, seqs)
    for g, s in zip(got, seqs):
        assert np.array_equal(g, chunked.sweep(database, s))


# -------------------------------------------------- database integration


def test_database_batch_matches_per_sequence(database):
    rng = np.random.default_rng(23)
    seqs = _population(rng, 9, lo=1, hi=30)  # includes shorter-than-window
    singles = [database.sequence_similarity(s) for s in seqs]
    batch = database.sequence_similarity_batch(seqs)
    assert len(batch) == len(singles)
    for a, b in zip(singles, batch):
        assert a.num_windows == b.num_windows
        assert (a.counts != b.counts).nnz == 0


def test_database_kernel_choice_is_bit_exact():
    rng = np.random.default_rng(29)
    proteins = [
        Protein(f"Q{i}", decode(rng.integers(0, 20, size=15).astype(np.uint8)))
        for i in range(5)
    ]
    graph = InteractionGraph(proteins, [("Q0", "Q1")])
    chunked_db = PipeDatabase(graph, PAM120, W, THRESHOLD, kernel="chunked")
    batched_db = PipeDatabase(graph, PAM120, W, THRESHOLD, kernel="batched")
    seq = rng.integers(0, 20, size=30).astype(np.uint8)
    a = chunked_db.sequence_similarity(seq)
    b = batched_db.sequence_similarity(seq)
    assert (a.counts != b.counts).nnz == 0
