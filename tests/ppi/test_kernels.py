"""Tests for the pluggable similarity-kernel layer.

The chunked numpy kernel is the bit-exact reference; the batched kernel
must reproduce it exactly (the padding rows between stacked sequences are
discarded, per-row float64 summation order is unchanged) while sweeping a
whole population in a handful of stacked passes.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ppi.database import PipeDatabase
from repro.ppi.graph import InteractionGraph
from repro.ppi.kernels import (
    DEFAULT_KERNEL,
    BatchedNumpyKernel,
    ChunkedNumpyKernel,
    SimilarityKernel,
    available_kernels,
    get_kernel,
    register_kernel,
)
from repro.sequences.encoding import decode
from repro.sequences.protein import Protein
from repro.substitution import PAM120
from repro.substitution.matrix import SubstitutionMatrix

W = 3
THRESHOLD = 15.0


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(7)
    proteins = [
        Protein(f"P{i}", decode(rng.integers(0, 20, size=int(n)).astype(np.uint8)))
        for i, n in enumerate(rng.integers(8, 30, size=8))
    ]
    proteins.append(Protein("SHORT", "AC"))  # shorter than the window
    graph = InteractionGraph(proteins, [("P0", "P1"), ("P2", "P3")])
    return PipeDatabase(graph, PAM120, W, THRESHOLD, kernel="chunked")


def _population(rng, n, lo=4, hi=40):
    return [
        rng.integers(0, 20, size=int(length)).astype(np.uint8)
        for length in rng.integers(lo, hi, size=n)
    ]


# ---------------------------------------------------------------- registry


def test_registry_lists_reference_first():
    names = available_kernels()
    assert names[0] == ChunkedNumpyKernel.name == "chunked"
    assert BatchedNumpyKernel.name in names


def test_default_kernel_is_batched():
    assert DEFAULT_KERNEL == "batched"
    assert isinstance(get_kernel(None), BatchedNumpyKernel)


def test_get_kernel_by_name_and_passthrough():
    assert isinstance(get_kernel("chunked"), ChunkedNumpyKernel)
    instance = BatchedNumpyKernel(batch_residues=64)
    assert get_kernel(instance) is instance


def test_get_kernel_unknown_name():
    with pytest.raises(ValueError, match="unknown similarity kernel"):
        get_kernel("does-not-exist")


def test_register_kernel_requires_concrete_name():
    class Nameless(ChunkedNumpyKernel):
        name = SimilarityKernel.name

    with pytest.raises(ValueError):
        register_kernel(Nameless)


def test_register_kernel_decorator_roundtrip():
    @register_kernel
    class Doubled(ChunkedNumpyKernel):
        name = "test-doubled"

    try:
        assert "test-doubled" in available_kernels()
        assert isinstance(get_kernel("test-doubled"), Doubled)
    finally:
        from repro.ppi import kernels

        kernels._REGISTRY.pop("test-doubled", None)


# ------------------------------------------------------------- bit-exact


def test_batched_sweep_matches_chunked(database):
    rng = np.random.default_rng(11)
    seqs = _population(rng, 12)
    chunked = ChunkedNumpyKernel()
    batched = BatchedNumpyKernel()
    expected = [chunked.sweep(database, s) for s in seqs]
    got = batched.sweep_batch(database, seqs)
    assert len(got) == len(expected)
    for e, g in zip(expected, got):
        assert g.dtype == e.dtype
        assert np.array_equal(e, g)


def test_batched_grouping_limits_do_not_change_results(database):
    rng = np.random.default_rng(13)
    seqs = _population(rng, 10)
    reference = BatchedNumpyKernel().sweep_batch(database, seqs)
    # batch_residues=8 forces nearly one group per sequence; batch_elements
    # tiny enough to cap the stack via the element bound instead.
    for kernel in (
        BatchedNumpyKernel(batch_residues=8),
        BatchedNumpyKernel(batch_elements=512),
    ):
        split = kernel.sweep_batch(database, seqs)
        for r, s in zip(reference, split):
            assert np.array_equal(r, s)


def test_batched_single_sequence_equals_sweep(database):
    rng = np.random.default_rng(17)
    seq = rng.integers(0, 20, size=23).astype(np.uint8)
    batched = BatchedNumpyKernel()
    (only,) = batched.sweep_batch(database, [seq])
    assert np.array_equal(only, batched.sweep(database, seq))


def test_sweep_batch_empty(database):
    assert BatchedNumpyKernel().sweep_batch(database, []) == []


def test_default_sweep_batch_loops(database):
    rng = np.random.default_rng(19)
    seqs = _population(rng, 4)
    chunked = ChunkedNumpyKernel()
    got = chunked.sweep_batch(database, seqs)
    for g, s in zip(got, seqs):
        assert np.array_equal(g, chunked.sweep(database, s))


# ------------------------------------------------------------ sparse API


def test_sweep_sparse_matches_dense(database):
    rng = np.random.default_rng(41)
    seqs = _population(rng, 8, lo=1, hi=30)  # includes shorter-than-window
    for kernel in (ChunkedNumpyKernel(), BatchedNumpyKernel()):
        for seq in seqs:
            dense = kernel.sweep(database, seq)
            sparse = kernel.sweep_sparse(database, seq)
            assert sp.issparse(sparse) and sparse.format == "csr"
            assert sparse.dtype == np.int64
            assert sparse.shape == dense.shape
            assert (sparse != sp.csr_matrix(dense)).nnz == 0


def test_sweep_batch_sparse_matches_dense(database):
    rng = np.random.default_rng(43)
    seqs = _population(rng, 10)
    reference = [
        sp.csr_matrix(c) for c in BatchedNumpyKernel().sweep_batch(database, seqs)
    ]
    # Grouping limits change wall time only, never results — also on the
    # sparse path.
    for kernel in (
        BatchedNumpyKernel(),
        BatchedNumpyKernel(batch_residues=8),
        ChunkedNumpyKernel(),
    ):
        got = kernel.sweep_batch_sparse(database, seqs)
        assert len(got) == len(reference)
        for r, g in zip(reference, got):
            assert (r != g).nnz == 0


def test_sweep_sparse_non_integer_matrix_falls_back(database):
    # A non-integer matrix disables the int16 fast path; the sparse API
    # must fall back to the dense reference and still match it exactly.
    scores = np.asarray(PAM120.scores) + 0.5
    matrix = SubstitutionMatrix("half", scores)
    db = PipeDatabase(database.graph, matrix, W, THRESHOLD, kernel="batched")
    kernel = BatchedNumpyKernel()
    assert kernel._int_table(db) is None
    seq = np.random.default_rng(47).integers(0, 20, size=20).astype(np.uint8)
    dense = kernel.sweep(db, seq)
    assert (kernel.sweep_sparse(db, seq) != sp.csr_matrix(dense)).nnz == 0


# ------------------------------------------------------- int-table cache


def test_int_table_never_aliased_across_matrix_lifetimes(database):
    """Two different matrices at a reused ``id()`` never share a table.

    The old cache keyed by ``id(db.matrix)``: once a matrix was GC'd, a
    new matrix allocated at the same address silently inherited its int16
    table.  Create-and-drop matrices of *different* content in a loop so
    CPython reuses addresses, checking bit-exactness against the
    reference each time — under id-keying the first address reuse yields
    a stale (wrongly scaled) table and the assertion fires.
    """
    kernel = BatchedNumpyKernel()
    chunked = ChunkedNumpyKernel()
    rng = np.random.default_rng(31)
    seq = rng.integers(0, 20, size=18).astype(np.uint8)
    for i in range(20):
        scores = np.asarray(PAM120.scores) * (i + 1)  # integer, distinct
        matrix = SubstitutionMatrix(f"scaled-{i}", scores)
        db = PipeDatabase(database.graph, matrix, W, THRESHOLD, kernel=kernel)
        assert np.array_equal(kernel.sweep(db, seq), chunked.sweep(db, seq))
        del db, matrix, scores
    # ... and a long-lived kernel's table cache stays bounded.
    assert len(kernel._int_tables) <= kernel._INT_TABLE_CACHE_SIZE


def test_int_table_key_includes_window_size(database):
    # The overflow verdict depends on window_size: a matrix safe at w=1
    # can overflow int16 at w=3.  One shared kernel must not let the
    # first database's cached verdict leak into the second's.
    scores = np.where(np.eye(20, dtype=bool), 20_000.0, -1.0)
    matrix = SubstitutionMatrix("huge", scores)
    kernel = BatchedNumpyKernel()
    chunked = ChunkedNumpyKernel()
    db1 = PipeDatabase(database.graph, matrix, 1, 10.0, kernel=kernel)
    db3 = PipeDatabase(database.graph, matrix, 3, 10.0, kernel=kernel)
    assert kernel._int_table(db1) is not None  # 20000 * 1 fits int16
    assert kernel._int_table(db3) is None  # 20000 * 3 overflows
    rng = np.random.default_rng(37)
    for db in (db1, db3):
        seq = rng.integers(0, 20, size=12).astype(np.uint8)
        assert np.array_equal(kernel.sweep(db, seq), chunked.sweep(db, seq))


# -------------------------------------------------- database integration


def test_database_batch_matches_per_sequence(database):
    rng = np.random.default_rng(23)
    seqs = _population(rng, 9, lo=1, hi=30)  # includes shorter-than-window
    singles = [database.sequence_similarity(s) for s in seqs]
    batch = database.sequence_similarity_batch(seqs)
    assert len(batch) == len(singles)
    for a, b in zip(singles, batch):
        assert a.num_windows == b.num_windows
        assert (a.counts != b.counts).nnz == 0


def test_database_kernel_choice_is_bit_exact():
    rng = np.random.default_rng(29)
    proteins = [
        Protein(f"Q{i}", decode(rng.integers(0, 20, size=15).astype(np.uint8)))
        for i in range(5)
    ]
    graph = InteractionGraph(proteins, [("Q0", "Q1")])
    chunked_db = PipeDatabase(graph, PAM120, W, THRESHOLD, kernel="chunked")
    batched_db = PipeDatabase(graph, PAM120, W, THRESHOLD, kernel="batched")
    seq = rng.integers(0, 20, size=30).astype(np.uint8)
    a = chunked_db.sequence_similarity(seq)
    b = batched_db.sequence_similarity(seq)
    assert (a.counts != b.counts).nnz == 0
