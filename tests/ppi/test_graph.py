"""Tests for the interaction graph."""

import numpy as np
import pytest

from repro.ppi.graph import InteractionGraph
from repro.sequences.protein import Protein


@pytest.fixture()
def proteins():
    return [Protein(f"P{i}", "MKTLLVAC") for i in range(5)]


@pytest.fixture()
def graph(proteins):
    return InteractionGraph(proteins, [("P0", "P1"), ("P1", "P2"), ("P0", "P2")])


def test_sizes(graph):
    assert len(graph) == 5
    assert graph.num_edges == 3


def test_contains_and_lookup(graph):
    assert "P0" in graph
    assert "PX" not in graph
    assert graph.protein("P3").name == "P3"
    with pytest.raises(KeyError, match="PX"):
        graph.index_of("PX")


def test_duplicate_proteome_rejected(proteins):
    with pytest.raises(ValueError, match="duplicate"):
        InteractionGraph(proteins + [Protein("P0", "MKT")])


def test_empty_proteome_rejected():
    with pytest.raises(ValueError):
        InteractionGraph([])


def test_edges_deduplicated(proteins):
    g = InteractionGraph(proteins, [("P0", "P1"), ("P1", "P0"), ("P0", "P1")])
    assert g.num_edges == 1


def test_add_interaction_returns_status(graph):
    assert graph.add_interaction("P3", "P4") is True
    assert graph.add_interaction("P4", "P3") is False


def test_unknown_endpoint_rejected(graph):
    with pytest.raises(KeyError):
        graph.add_interaction("P0", "PX")


def test_neighbors_sorted(graph):
    assert graph.neighbors("P0") == ["P1", "P2"]
    assert graph.neighbors("P4") == []


def test_degree(graph):
    assert graph.degree("P1") == 2
    assert graph.degree("P3") == 0


def test_has_edge_symmetric(graph):
    assert graph.has_edge("P0", "P1")
    assert graph.has_edge("P1", "P0")
    assert not graph.has_edge("P0", "P3")


def test_edges_listing(graph):
    assert graph.edges() == [("P0", "P1"), ("P0", "P2"), ("P1", "P2")]


def test_self_loop_supported(proteins):
    g = InteractionGraph(proteins, [("P0", "P0")])
    assert g.has_edge("P0", "P0")
    assert g.num_edges == 1
    assert g.degree("P0") == 1


def test_adjacency_matrix(graph):
    adj = graph.adjacency_matrix()
    dense = adj.toarray()
    assert dense.shape == (5, 5)
    assert np.array_equal(dense, dense.T)
    assert dense[0, 1] == 1
    assert dense[0, 3] == 0
    assert dense.sum() == 2 * graph.num_edges


def test_adjacency_with_self_loop(proteins):
    g = InteractionGraph(proteins, [("P0", "P0"), ("P0", "P1")])
    dense = g.adjacency_matrix().toarray()
    assert dense[0, 0] == 1


def test_to_networkx(graph):
    nxg = graph.to_networkx()
    assert nxg.number_of_nodes() == 5
    assert nxg.number_of_edges() == 3


def test_degree_histogram(graph):
    hist = graph.degree_histogram()
    # P3, P4 have degree 0; P0, P1, P2 degree 2.
    assert hist[0] == 2
    assert hist[2] == 3
