"""Tests for window fragmentation."""

import numpy as np
import pytest

from repro.ppi.windows import num_windows, window_view
from repro.sequences.encoding import encode


def test_num_windows_basic():
    assert num_windows(10, 3) == 8
    assert num_windows(5, 5) == 1


def test_num_windows_short_sequence():
    assert num_windows(4, 5) == 0
    assert num_windows(0, 5) == 0


def test_num_windows_validation():
    with pytest.raises(ValueError):
        num_windows(10, 0)
    with pytest.raises(ValueError):
        num_windows(-1, 3)


def test_window_view_contents():
    seq = encode("ACDEF")
    v = window_view(seq, 3)
    assert v.shape == (3, 3)
    assert np.array_equal(v[0], seq[0:3])
    assert np.array_equal(v[2], seq[2:5])


def test_window_view_zero_copy():
    seq = encode("ACDEFGH")
    v = window_view(seq, 4)
    assert v.base is not None  # a view, not a copy


def test_window_view_empty():
    seq = encode("AC")
    v = window_view(seq, 5)
    assert v.shape == (0, 5)


def test_window_view_rejects_2d():
    with pytest.raises(ValueError):
        window_view(np.zeros((2, 2), dtype=np.uint8), 2)
