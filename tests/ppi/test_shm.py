"""Lifecycle and bit-exactness tests for the shared-memory proteome view.

These cover the same-process paths (share → attach → rebuild → close);
cross-process behaviour — forked/spawned workers, SIGKILL leak safety —
lives in ``tests/parallel/test_shm_runtime.py``.
"""

import pickle

import numpy as np
import pytest

from repro.ppi import shm as shm_mod
from repro.ppi.shm import SharedProteomeView
from repro.telemetry import MetricsRegistry


def _segment_exists(token: str) -> bool:
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=token)
    except FileNotFoundError:
        return False
    seg.close()
    return True


@pytest.fixture()
def shared_view(tiny_engine, tiny_problem):
    target, non_targets = tiny_problem
    view = SharedProteomeView.share(
        tiny_engine.database, similarity_names=[target, *non_targets]
    )
    yield view
    view.close()


def test_share_registers_one_segment(shared_view):
    stats = shared_view.stats()
    assert stats["owner"] is True
    assert stats["open_views"] == 1
    assert stats["bytes"] > 0
    assert _segment_exists(shared_view.handle.token)


def test_handle_is_small_and_picklable(shared_view, tiny_engine):
    blob = pickle.dumps(shared_view.handle)
    # The whole point: kilobytes of handle instead of the pickled engine
    # (the gap widens with proteome size; the tiny world is ~7x).
    assert len(blob) < 64 * 1024
    assert len(blob) < len(pickle.dumps(tiny_engine))


def test_rebuilt_database_is_bit_exact(shared_view, tiny_engine, rng):
    # The database pins its backing view (build_database back-reference),
    # so not keeping the view alive explicitly is safe.
    database = SharedProteomeView.attach(shared_view.handle).build_database()
    source = tiny_engine.database
    assert database.graph.names == source.graph.names
    assert np.array_equal(database.concatenated, source.concatenated)
    assert np.array_equal(database.valid_columns, source.valid_columns)
    seq = rng.integers(0, 20, size=40).astype(np.uint8)
    a = source.sequence_similarity(seq)
    b = database.sequence_similarity(seq)
    assert a.num_windows == b.num_windows
    assert (a.counts != b.counts).nnz == 0


def test_precomputed_similarities_prefilled(shared_view, tiny_engine, tiny_problem):
    target, non_targets = tiny_problem
    view = SharedProteomeView.attach(shared_view.handle)
    try:
        database = view.build_database()
        for name in (target, *non_targets):
            assert name in database._protein_similarity_cache
            theirs = database.protein_similarity(name)
            ours = tiny_engine.database.protein_similarity(name)
            assert (theirs.counts != ours.counts).nnz == 0
    finally:
        view.close()


def test_attach_counts_and_unlink_on_last_close(tiny_engine):
    view = SharedProteomeView.share(tiny_engine.database)
    token = view.handle.token
    second = SharedProteomeView.attach(view.handle)
    assert view.stats()["open_views"] == 2
    view.close()  # owner closes first: segment must survive the attacher
    assert second.stats()["open_views"] == 1
    assert _segment_exists(token)
    second.close()
    assert not _segment_exists(token)
    assert token not in shm_mod._OPEN_VIEWS


def test_close_is_idempotent(tiny_engine):
    view = SharedProteomeView.share(tiny_engine.database)
    view.close()
    view.close()
    assert not _segment_exists(view.handle.token)


def test_context_manager_unlinks(tiny_engine):
    with SharedProteomeView.share(tiny_engine.database) as view:
        token = view.handle.token
        assert _segment_exists(token)
    assert not _segment_exists(token)


def test_telemetry_counters(tiny_engine):
    registry = MetricsRegistry()
    view = SharedProteomeView.share(tiny_engine.database, telemetry=registry)
    attached = SharedProteomeView.attach(view.handle, telemetry=registry)
    attached.close()
    view.close()
    assert registry.counter("shm.attaches").value >= 1
    assert registry.counter("shm.unlinks").value == 1
