"""Tests for PIPE accuracy evaluation."""

import numpy as np
import pytest

from repro.ppi.evaluation import PipeEvaluation, evaluate_pipe


@pytest.fixture(scope="module")
def evaluation(tiny_world):
    return evaluate_pipe(
        tiny_world.engine, max_positive=40, num_negative=40, seed=0
    )


def test_sample_sizes(evaluation):
    assert evaluation.positive_scores.size == 40
    assert evaluation.negative_scores.size == 40


def test_scores_in_unit_interval(evaluation):
    for arr in (evaluation.positive_scores, evaluation.negative_scores):
        assert arr.min() >= 0.0
        assert arr.max() < 1.0


def test_pipe_discriminates(evaluation):
    """PIPE must separate known interactions from random pairs — the
    property the whole fitness function rests on."""
    assert evaluation.auc() > 0.7
    assert evaluation.separation() > 0.1


def test_rates_at_extreme_thresholds(evaluation):
    assert evaluation.true_positive_rate(0.0) == 1.0
    assert evaluation.false_positive_rate(0.0) == 1.0
    assert evaluation.true_positive_rate(1.1) == 0.0
    assert evaluation.false_positive_rate(1.1) == 0.0


def test_roc_monotone(evaluation):
    fpr, tpr, thresholds = evaluation.roc_curve()
    assert np.all(np.diff(fpr) >= 0)
    assert np.all(np.diff(tpr) >= 0)
    assert np.all(np.diff(thresholds) <= 0)
    assert np.all(tpr >= fpr - 1e-12) or evaluation.auc() < 0.5


def test_threshold_at_fpr(evaluation):
    for target in (0.2, 0.05, 0.0):
        thr = evaluation.threshold_at_fpr(target)
        assert evaluation.false_positive_rate(thr) <= target
    with pytest.raises(ValueError):
        evaluation.threshold_at_fpr(1.5)


def test_auc_matches_rank_statistic(evaluation):
    pos = evaluation.positive_scores
    neg = evaluation.negative_scores
    wins = sum(
        1.0 if p > n else (0.5 if p == n else 0.0) for p in pos for n in neg
    )
    assert evaluation.auc() == pytest.approx(wins / (pos.size * neg.size))


def test_leave_one_out_is_used(tiny_world):
    """Positive scores must be computed WITHOUT the pair's own edge —
    scoring with the edge included would inflate every positive."""
    engine = tiny_world.engine
    a, b = tiny_world.graph.edges()[0]
    h_loo = engine.result_matrix(
        engine.similarity_of(a), engine.similarity_of(b), exclude_edge=(a, b)
    )
    h_full = engine.result_matrix(
        engine.similarity_of(a), engine.similarity_of(b)
    )
    assert h_loo.sum() <= h_full.sum()


def test_deterministic(tiny_world):
    a = evaluate_pipe(tiny_world.engine, max_positive=10, num_negative=10, seed=3)
    b = evaluate_pipe(tiny_world.engine, max_positive=10, num_negative=10, seed=3)
    assert np.array_equal(a.positive_scores, b.positive_scores)
    assert np.array_equal(a.negative_scores, b.negative_scores)


def test_validation():
    with pytest.raises(ValueError):
        PipeEvaluation(np.array([]), np.array([0.5]))
    with pytest.raises(ValueError):
        PipeEvaluation(np.array([0.5]), np.array([[0.5]]))
