"""Tests for batch interactome prediction."""

import numpy as np
import pytest

from repro.ppi.batch import InteractomePrediction, predict_interactome


@pytest.fixture(scope="module")
def prediction(tiny_world):
    subset = tiny_world.graph.names[:20]
    return predict_interactome(
        tiny_world.engine, proteins=subset, max_pairs=300
    )


def test_all_pairs_scored(prediction):
    assert len(prediction) == 20 * 19 // 2
    assert prediction.scores.min() >= 0.0
    assert prediction.scores.max() < 1.0


def test_known_flags_match_graph(prediction, tiny_world):
    for (a, b), known in zip(prediction.pairs, prediction.known):
        assert known == tiny_world.graph.has_edge(a, b)


def test_known_pairs_score_higher_on_average(prediction):
    known = prediction.scores[prediction.known]
    unknown = prediction.scores[~prediction.known]
    if known.size and unknown.size:
        assert known.mean() > unknown.mean()


def test_score_of_symmetric_lookup(prediction):
    a, b = prediction.pairs[0]
    assert prediction.score_of(a, b) == prediction.score_of(b, a)


def test_predicted_and_novel(prediction):
    thr = 0.3
    predicted = set(prediction.predicted(thr))
    novel = prediction.novel_predictions(thr)
    for pair, score in novel:
        assert pair in predicted
        assert score >= thr
    # Novel list is sorted strongest-first.
    scores = [s for _, s in novel]
    assert scores == sorted(scores, reverse=True)


def test_recovery_rate_bounds(prediction):
    assert 0.0 <= prediction.recovery_rate(0.3) <= 1.0
    assert prediction.recovery_rate(0.0) == 1.0 or not prediction.known.any()


def test_discovery_mode_excludes_known(tiny_world):
    subset = tiny_world.graph.names[:12]
    pred = predict_interactome(
        tiny_world.engine, proteins=subset, include_known=False, max_pairs=100
    )
    assert not pred.known.any()


def test_novel_predictions_enriched_for_latent_pairs(tiny_world):
    """The headline property: strong novel predictions should be enriched
    for *latent* complementary-motif pairs — interactions that exist in
    the synthetic biology but were never recorded in the noisy database.
    """
    pred = predict_interactome(tiny_world.engine, max_pairs=2000)

    def complementary(a, b):
        def roles(name):
            tags = tiny_world.protein(name).annotations.get("motifs", [])
            locks = {t.split(":")[1] for t in tags if str(t).startswith("lock:")}
            keys = {t.split(":")[1] for t in tags if str(t).startswith("key:")}
            return locks, keys

        la, ka = roles(a)
        lb, kb = roles(b)
        return bool((la & kb) | (lb & ka))

    novel = pred.novel_predictions(0.4)[:15]
    if novel:
        hits = sum(1 for (a, b), _ in novel if complementary(a, b))
        base_rate_pairs = [p for p, k in zip(pred.pairs, pred.known) if not k]
        base_hits = sum(1 for a, b in base_rate_pairs if complementary(a, b))
        base_rate = base_hits / len(base_rate_pairs)
        assert hits / len(novel) > base_rate


def test_max_pairs_guard(tiny_world):
    with pytest.raises(ValueError, match="max_pairs"):
        predict_interactome(tiny_world.engine, max_pairs=10)


def test_too_few_proteins(tiny_world):
    with pytest.raises(ValueError):
        predict_interactome(tiny_world.engine, proteins=["YBL051C"])


def test_validation():
    with pytest.raises(ValueError):
        InteractomePrediction(
            (("a", "b"),), np.array([0.1, 0.2]), np.array([True])
        )
