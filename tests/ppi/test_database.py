"""Tests for the PIPE database: similarity sweeps vs a naive reference."""

import numpy as np
import pytest

from repro.ppi.database import PipeDatabase
from repro.ppi.graph import InteractionGraph
from repro.sequences.encoding import decode
from repro.sequences.protein import Protein
from repro.substitution import PAM120

W = 3
THRESHOLD = 15.0


def _random_protein(name, length, rng):
    return Protein(name, decode(rng.integers(0, 20, size=length).astype(np.uint8)))


@pytest.fixture(scope="module")
def small_graph():
    rng = np.random.default_rng(77)
    proteins = [_random_protein(f"P{i}", int(rng.integers(8, 20)), rng) for i in range(6)]
    proteins.append(Protein("SHORT", "AC"))  # shorter than the window
    edges = [("P0", "P1"), ("P1", "P2"), ("P3", "P4"), ("P5", "P5")]
    return InteractionGraph(proteins, edges)


@pytest.fixture(scope="module")
def database(small_graph):
    return PipeDatabase(small_graph, PAM120, W, THRESHOLD)


def _naive_window_match_counts(query, protein, w, threshold):
    """Reference implementation: counts of similar window pairs."""
    nq = len(query) - w + 1
    npr = len(protein) - w + 1
    counts = np.zeros(max(nq, 0), dtype=np.int64)
    for i in range(max(nq, 0)):
        for j in range(max(npr, 0)):
            score = sum(
                PAM120.scores[query[i + t], protein[j + t]] for t in range(w)
            )
            if score >= threshold:
                counts[i] += 1
    return counts


def test_sequence_similarity_matches_naive(database, small_graph):
    rng = np.random.default_rng(3)
    query = rng.integers(0, 20, size=14).astype(np.uint8)
    sim = database.sequence_similarity(query)
    assert sim.num_windows == 12
    dense = sim.counts.toarray()
    for p_idx, protein in enumerate(small_graph.proteins):
        expected = _naive_window_match_counts(
            query, protein.encoded, W, THRESHOLD
        )
        assert np.array_equal(dense[:, p_idx], expected), protein.name


def test_short_protein_contributes_nothing(database, small_graph):
    rng = np.random.default_rng(4)
    query = rng.integers(0, 20, size=10).astype(np.uint8)
    dense = database.sequence_similarity(query).counts.toarray()
    short_idx = small_graph.index_of("SHORT")
    assert dense[:, short_idx].sum() == 0


def test_chunked_sweep_equivalent(small_graph):
    rng = np.random.default_rng(5)
    query = rng.integers(0, 20, size=16).astype(np.uint8)
    whole = PipeDatabase(small_graph, PAM120, W, THRESHOLD)
    chunked = PipeDatabase(small_graph, PAM120, W, THRESHOLD, chunk_residues=7)
    a = whole.sequence_similarity(query).counts.toarray()
    b = chunked.sequence_similarity(query).counts.toarray()
    assert np.array_equal(a, b)


def test_binary_view(database):
    rng = np.random.default_rng(6)
    query = rng.integers(0, 20, size=12).astype(np.uint8)
    sim = database.sequence_similarity(query)
    binary = sim.binary.toarray()
    counts = sim.counts.toarray()
    assert np.array_equal(binary, (counts > 0).astype(np.int64))


def test_matched_protein_indices(database):
    rng = np.random.default_rng(7)
    query = rng.integers(0, 20, size=12).astype(np.uint8)
    sim = database.sequence_similarity(query)
    matched = sim.matched_protein_indices()
    dense = sim.counts.toarray()
    expected = np.nonzero(dense.sum(axis=0) > 0)[0]
    assert np.array_equal(np.sort(matched), expected)


def test_query_shorter_than_window(database):
    sim = database.sequence_similarity(np.array([0, 1], dtype=np.uint8))
    assert sim.num_windows == 0
    assert sim.counts.shape == (0, database.num_proteins)


def test_protein_similarity_cached(database):
    a = database.protein_similarity("P0")
    b = database.protein_similarity("P0")
    assert a is b
    assert database.cache_info()["entries"] >= 1


def test_precompute_fills_cache(small_graph):
    db = PipeDatabase(small_graph, PAM120, W, THRESHOLD)
    db.precompute(["P0", "P1"])
    assert db.cache_info()["entries"] == 2
    db.precompute()
    assert db.cache_info()["entries"] == len(small_graph)


def test_protein_similarity_matches_direct(database, small_graph):
    by_name = database.protein_similarity("P2").counts.toarray()
    direct = database.sequence_similarity(
        small_graph.protein("P2").encoded
    ).counts.toarray()
    assert np.array_equal(by_name, direct)


def test_invalid_construction(small_graph):
    with pytest.raises(ValueError):
        PipeDatabase(small_graph, PAM120, 0, THRESHOLD)
    with pytest.raises(ValueError):
        PipeDatabase(small_graph, PAM120, 5, THRESHOLD, chunk_residues=3)


def test_invalid_query(database):
    with pytest.raises(ValueError):
        database.sequence_similarity(np.array([], dtype=np.uint8))
    with pytest.raises(ValueError):
        database.sequence_similarity(np.zeros((2, 2), dtype=np.uint8))


def test_repr(database):
    assert "PipeDatabase" in repr(database)
    assert "PAM120" in repr(database)
