"""Tests for binding-site localisation."""

import numpy as np
import pytest

from repro.ppi.sites import BindingSite, predict_binding_sites


def _matrix_with_block(shape, block, value):
    h = np.zeros(shape)
    (r0, r1), (c0, c1) = block
    h[r0:r1, c0:c1] = value
    return h


class TestSingleSite:
    def test_localises_the_block(self):
        h = _matrix_with_block((20, 30), ((5, 9), (10, 14)), 10.0)
        sites = predict_binding_sites(h, window_size=4, smooth_radius=0)
        assert len(sites) == 1
        s = sites[0]
        assert s.a_span == (5, 9 - 1 + 4)
        assert s.b_span == (10, 14 - 1 + 4)

    def test_peak_and_total_evidence(self):
        h = _matrix_with_block((10, 10), ((2, 4), (3, 5)), 7.0)
        (site,) = predict_binding_sites(h, window_size=3, smooth_radius=0)
        assert site.peak_evidence == pytest.approx(7.0)
        assert site.total_evidence == pytest.approx(4 * 7.0)

    def test_window_size_extends_span(self):
        h = _matrix_with_block((10, 10), ((4, 5), (4, 5)), 5.0)
        (site,) = predict_binding_sites(h, window_size=6, smooth_radius=0)
        assert site.a_span == (4, 10)
        assert site.b_span == (4, 10)


class TestMultipleSites:
    def test_two_separate_blocks(self):
        h = np.zeros((30, 30))
        h[2:5, 2:5] = 10.0
        h[20:23, 20:23] = 6.0
        sites = predict_binding_sites(
            h, window_size=3, max_sites=5, smooth_radius=0
        )
        assert len(sites) == 2
        # Strongest first.
        assert sites[0].peak_evidence > sites[1].peak_evidence
        assert sites[0].a_start == 2
        assert sites[1].a_start == 20

    def test_weak_echo_suppressed(self):
        h = np.zeros((20, 20))
        h[2:4, 2:4] = 10.0
        h[15, 15] = 1.0  # below min_peak_fraction * 10
        sites = predict_binding_sites(
            h, window_size=3, max_sites=5, min_peak_fraction=0.25, smooth_radius=0
        )
        assert len(sites) == 1

    def test_max_sites_cap(self):
        h = np.zeros((40, 40))
        for k in range(4):
            h[10 * k : 10 * k + 2, 10 * k : 10 * k + 2] = 10.0
        sites = predict_binding_sites(
            h, window_size=2, max_sites=2, smooth_radius=0
        )
        assert len(sites) == 2


class TestEdgeCases:
    def test_empty_matrix(self):
        assert predict_binding_sites(np.zeros((0, 5)), 3) == []

    def test_all_zero(self):
        assert predict_binding_sites(np.zeros((5, 5)), 3) == []

    def test_smoothing_merges_speckle(self):
        # A dense speckled block is one site after smoothing.
        h = np.zeros((12, 12))
        h[3:8:2, 3:8:2] = 9.0
        sites = predict_binding_sites(h, window_size=3, smooth_radius=1)
        assert len(sites) >= 1
        assert sites[0].a_start <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            predict_binding_sites(np.zeros(5), 3)
        with pytest.raises(ValueError):
            predict_binding_sites(np.zeros((5, 5)), 0)
        with pytest.raises(ValueError):
            predict_binding_sites(np.zeros((5, 5)), 3, region_fraction=0.0)
        with pytest.raises(ValueError):
            predict_binding_sites(np.zeros((5, 5)), 3, max_sites=0)
        with pytest.raises(ValueError):
            BindingSite(5, 5, 0, 1, 1.0, 1.0)


class TestOnRealEngine:
    def test_site_covers_planted_motif(self, tiny_world, tiny_engine):
        """A candidate carrying the target's complementary lock should
        yield a binding site covering the lock's position."""
        tp = tiny_world.protein("YBL051C")
        keys = [t for t in tp.annotations["motifs"] if str(t).startswith("key:")]
        pair = tiny_world.library[int(str(keys[0]).split(":")[1])]
        rng = np.random.default_rng(3)
        seq = rng.integers(0, 20, size=40).astype(np.uint8)
        lock_pos = 12
        seq[lock_pos : lock_pos + pair.lock.size] = pair.lock
        res = tiny_engine.evaluate(seq, "YBL051C", keep_matrix=True)
        sites = predict_binding_sites(
            res.result_matrix, tiny_engine.config.window_size
        )
        assert sites, "expected at least one site"
        top = sites[0]
        # The candidate-side span overlaps the planted lock.
        assert top.a_start <= lock_pos + pair.lock.size
        assert top.a_end >= lock_pos
