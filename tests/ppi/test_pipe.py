"""Tests for the PIPE engine against a naive reference implementation."""

import numpy as np
import pytest

from repro.ppi.database import PipeDatabase
from repro.ppi.graph import InteractionGraph
from repro.ppi.pipe import PipeConfig, PipeEngine
from repro.sequences.encoding import decode
from repro.substitution import PAM120

from repro.sequences.protein import Protein

W = 3
THRESHOLD = 15.0


def _naive_result_matrix(a, b, graph, w, threshold):
    """Direct transcription of Sec. 2.2: H[i, j] counts ordered interacting
    pairs (X, Y) where fragment a_i is similar to a fragment of X and b_j
    to a fragment of Y."""

    def similar_to_protein(query, i, protein):
        npr = len(protein) - w + 1
        for j in range(max(npr, 0)):
            score = sum(
                PAM120.scores[query[i + t], protein.encoded[j + t]]
                for t in range(w)
            )
            if score >= threshold:
                return True
        return False

    proteins = graph.proteins
    na, nb = len(a) - w + 1, len(b) - w + 1
    h = np.zeros((max(na, 0), max(nb, 0)))
    match_a = np.array(
        [[similar_to_protein(a, i, p) for p in proteins] for i in range(na)]
    )
    match_b = np.array(
        [[similar_to_protein(b, j, p) for p in proteins] for j in range(nb)]
    )
    adj = graph.adjacency_matrix().toarray()
    for i in range(na):
        for j in range(nb):
            h[i, j] = match_a[i] @ adj @ match_b[j]
    return h


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(11)
    proteins = [
        Protein(f"P{i}", decode(rng.integers(0, 20, size=int(rng.integers(9, 18))).astype(np.uint8)))
        for i in range(7)
    ]
    edges = [("P0", "P1"), ("P1", "P2"), ("P2", "P3"), ("P4", "P5"), ("P6", "P6")]
    graph = InteractionGraph(proteins, edges)
    config = PipeConfig(window_size=W, similarity_threshold=THRESHOLD, saturation=2.0)
    database = PipeDatabase(graph, PAM120, W, THRESHOLD)
    return graph, PipeEngine(database, config)


def test_result_matrix_matches_naive(world):
    graph, engine = world
    rng = np.random.default_rng(21)
    a = rng.integers(0, 20, size=13).astype(np.uint8)
    b = rng.integers(0, 20, size=11).astype(np.uint8)
    h = engine.result_matrix(engine.similarity_of(a), engine.similarity_of(b))
    expected = _naive_result_matrix(a, b, graph, W, THRESHOLD)
    assert np.array_equal(h, expected)


def test_result_matrix_known_proteins(world):
    graph, engine = world
    a = graph.protein("P0").encoded
    b = graph.protein("P1").encoded
    h = engine.result_matrix(
        engine.similarity_of("P0"), engine.similarity_of("P1")
    )
    expected = _naive_result_matrix(a, b, graph, W, THRESHOLD)
    assert np.array_equal(h, expected)


def test_score_in_unit_interval(world):
    _, engine = world
    rng = np.random.default_rng(31)
    for _ in range(5):
        a = rng.integers(0, 20, size=12).astype(np.uint8)
        b = rng.integers(0, 20, size=12).astype(np.uint8)
        s = engine.score(a, b)
        assert 0.0 <= s < 1.0


def test_score_monotone_in_evidence(world):
    _, engine = world
    # score = F / (F + c) is strictly monotone in the filtered max.
    s0, _ = engine.score_matrix(np.zeros((4, 4)))
    s1, _ = engine.score_matrix(np.full((4, 4), 2.0))
    s2, _ = engine.score_matrix(np.full((4, 4), 10.0))
    assert s0 == 0.0
    assert s0 < s1 < s2 < 1.0


def test_score_matrix_empty(world):
    _, engine = world
    score, fmax = engine.score_matrix(np.zeros((0, 5)))
    assert score == 0.0 and fmax == 0.0


def test_box_filter_averages(world):
    _, engine = world
    h = np.zeros((5, 5))
    h[2, 2] = 9.0
    score, fmax = engine.score_matrix(h)
    # 3x3 mean filter spreads the single peak to 1.0.
    assert fmax == pytest.approx(1.0)


def test_box_radius_zero_uses_raw_max(world):
    graph, _ = world
    config = PipeConfig(
        window_size=W, similarity_threshold=THRESHOLD, box_radius=0, saturation=2.0
    )
    engine = PipeEngine(PipeDatabase(graph, PAM120, W, THRESHOLD), config)
    h = np.zeros((5, 5))
    h[2, 2] = 9.0
    score, fmax = engine.score_matrix(h)
    assert fmax == pytest.approx(9.0)
    assert score == pytest.approx(9.0 / 11.0)


def test_evaluate_keep_matrix(world):
    _, engine = world
    rng = np.random.default_rng(41)
    a = rng.integers(0, 20, size=10).astype(np.uint8)
    res = engine.evaluate(a, "P0", keep_matrix=True)
    assert res.result_matrix is not None
    res2 = engine.evaluate(a, "P0")
    assert res2.result_matrix is None
    assert res2.score == res.score


def test_exclude_query_edge(world):
    graph, _ = world
    config = PipeConfig(
        window_size=W,
        similarity_threshold=THRESHOLD,
        exclude_query_edge=True,
        saturation=2.0,
    )
    engine = PipeEngine(PipeDatabase(graph, PAM120, W, THRESHOLD), config)
    # With the edge removed, the evidence can only decrease.
    with_edge = PipeEngine(
        PipeDatabase(graph, PAM120, W, THRESHOLD),
        PipeConfig(window_size=W, similarity_threshold=THRESHOLD, saturation=2.0),
    )
    h_with = with_edge.result_matrix(
        with_edge.similarity_of("P0"), with_edge.similarity_of("P1")
    )
    h_without = engine.result_matrix(
        engine.similarity_of("P0"),
        engine.similarity_of("P1"),
        exclude_edge=("P0", "P1"),
    )
    assert np.all(h_without <= h_with)


def test_score_against_consistent_with_score(world):
    graph, engine = world
    rng = np.random.default_rng(51)
    seq = rng.integers(0, 20, size=12).astype(np.uint8)
    names = ["P0", "P3", "P6"]
    batch = engine.score_against(seq, names)
    for name in names:
        assert batch[name] == pytest.approx(engine.score(seq, name))


def test_count_positions_mode(world):
    graph, _ = world
    cfg = PipeConfig(
        window_size=W,
        similarity_threshold=THRESHOLD,
        count_positions=True,
        saturation=2.0,
    )
    engine = PipeEngine(PipeDatabase(graph, PAM120, W, THRESHOLD), cfg)
    rng = np.random.default_rng(61)
    a = rng.integers(0, 20, size=12).astype(np.uint8)
    b = rng.integers(0, 20, size=12).astype(np.uint8)
    h_counts = engine.result_matrix(engine.similarity_of(a), engine.similarity_of(b))
    binary_engine = PipeEngine(
        PipeDatabase(graph, PAM120, W, THRESHOLD),
        PipeConfig(window_size=W, similarity_threshold=THRESHOLD, saturation=2.0),
    )
    h_binary = binary_engine.result_matrix(
        binary_engine.similarity_of(a), binary_engine.similarity_of(b)
    )
    assert np.all(h_counts >= h_binary)


def test_build_classmethod(world):
    graph, _ = world
    engine = PipeEngine.build(graph, PipeConfig(window_size=W, match_rate=1e-4))
    assert engine.database.window_size == W


def test_window_size_mismatch_rejected(world):
    graph, _ = world
    db = PipeDatabase(graph, PAM120, W, THRESHOLD)
    with pytest.raises(ValueError, match="window size"):
        PipeEngine(db, PipeConfig(window_size=W + 1))


def test_config_validation():
    with pytest.raises(ValueError):
        PipeConfig(window_size=0)
    with pytest.raises(ValueError):
        PipeConfig(box_radius=-1)
    with pytest.raises(ValueError):
        PipeConfig(saturation=0.0)
    with pytest.raises(ValueError):
        PipeConfig(match_rate=0.0)
    with pytest.raises(ValueError):
        PipeConfig(decision_threshold=1.5)


def test_config_with_matrix():
    cfg = PipeConfig(window_size=4, similarity_threshold=10.0)
    blosum = cfg.with_matrix("BLOSUM62")
    assert blosum.matrix_name == "BLOSUM62"
    assert blosum.similarity_threshold is None  # re-calibrated per matrix
    assert blosum.window_size == 4


def test_resolved_threshold_uses_explicit_value():
    cfg = PipeConfig(window_size=4, similarity_threshold=12.5)
    assert cfg.resolved_threshold() == 12.5


def test_predicted_respects_decision_threshold(world):
    """Regression: PipeResult.predicted hardcoded `score >= 0.5`, ignoring
    PipeConfig.decision_threshold — evaluate() and predict() disagreed for
    non-default thresholds."""
    from dataclasses import replace

    graph, engine = world
    rng = np.random.default_rng(33)
    a = rng.integers(0, 20, size=13).astype(np.uint8)
    b = graph.protein("P1").encoded
    for threshold in (0.0, 0.2, 0.9, 1.0):
        strict = PipeEngine(
            engine.database, replace(engine.config, decision_threshold=threshold)
        )
        result = strict.evaluate(a, b)
        assert result.decision_threshold == threshold
        assert result.predicted == (result.score >= threshold)
        assert result.predicted == strict.predict(a, b)
    # threshold 1.0 can never accept (score is bounded below 1) and 0.0
    # always accepts, so both branches are exercised above.
    always = PipeEngine(engine.database, replace(engine.config, decision_threshold=0.0))
    never = PipeEngine(engine.database, replace(engine.config, decision_threshold=1.0))
    assert always.evaluate(a, b).predicted
    assert not never.evaluate(a, b).predicted


def test_evidence_cache_bounded_lru(world):
    graph, engine = world
    rng = np.random.default_rng(34)
    seq = rng.integers(0, 20, size=13).astype(np.uint8)
    names = [p.name for p in graph.proteins]
    assert len(names) > 2
    small = PipeEngine(engine.database, engine.config, evidence_cache_size=2)
    small.score_against(seq, names)
    assert len(small._evidence_cache) <= 2
    # The most recently used entries survive; re-scoring them evicts nothing.
    kept = list(small._evidence_cache)
    small.score_against(seq, kept)
    assert list(small._evidence_cache) == kept


def test_evidence_cache_size_in_telemetry(world):
    from repro.telemetry import MetricsRegistry

    graph, engine = world
    rng = np.random.default_rng(35)
    seq = rng.integers(0, 20, size=13).astype(np.uint8)
    telemetry = MetricsRegistry()
    fresh = PipeEngine(engine.database, engine.config, telemetry=telemetry)
    fresh.score_against(seq, ["P0", "P1"])
    assert telemetry.gauge("pipe.evidence_cache.size").value == 2.0


def test_evidence_cache_size_validation(world):
    _, engine = world
    with pytest.raises(ValueError, match="evidence_cache_size"):
        PipeEngine(engine.database, engine.config, evidence_cache_size=0)
