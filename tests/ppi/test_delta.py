"""Tests for provenance-based delta re-scoring (the incremental sweep)."""

import numpy as np
import pytest

from repro.ppi.database import PipeDatabase
from repro.ppi.delta import (
    DeltaStats,
    Provenance,
    SequenceSegment,
    SimilarityLRU,
    copy_provenance,
    crossover_provenance,
    mutation_provenance,
)
from repro.ppi.graph import InteractionGraph
from repro.sequences.encoding import decode
from repro.sequences.protein import Protein
from repro.substitution import PAM120

W = 3
THRESHOLD = 15.0


def _random_protein(name, length, rng):
    return Protein(name, decode(rng.integers(0, 20, size=length).astype(np.uint8)))


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(11)
    proteins = [
        _random_protein(f"P{i}", int(rng.integers(10, 30)), rng) for i in range(5)
    ]
    edges = [("P0", "P1"), ("P1", "P2"), ("P2", "P3"), ("P4", "P4")]
    return PipeDatabase(InteractionGraph(proteins, edges), PAM120, W, THRESHOLD)


def _assert_exact(database, child, update):
    expected = database.sequence_similarity(child)
    assert update.similarity.num_windows == expected.num_windows
    assert np.array_equal(
        update.similarity.counts.toarray(), expected.counts.toarray()
    )


class TestProvenanceHelpers:
    def test_copy_provenance_single_full_segment(self):
        parent = np.arange(10, dtype=np.uint8) % 20
        prov = copy_provenance(parent)
        assert prov.op == "copy"
        (seg,) = prov.segments
        assert (seg.parent_start, seg.child_start, seg.length) == (0, 0, 10)
        assert prov.parent_keys() == (parent.tobytes(),)

    def test_mutation_provenance_splits_at_hits(self):
        parent = np.zeros(10, dtype=np.uint8)
        prov = mutation_provenance(parent, [3, 7])
        spans = [(s.child_start, s.length) for s in prov.segments]
        assert spans == [(0, 3), (4, 3), (8, 2)]

    def test_mutation_provenance_no_hits_is_copy_shaped(self):
        parent = np.zeros(6, dtype=np.uint8)
        prov = mutation_provenance(parent, [])
        assert [(s.child_start, s.length) for s in prov.segments] == [(0, 6)]

    def test_mutation_provenance_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            mutation_provenance(np.zeros(4, dtype=np.uint8), [4])

    def test_crossover_provenance_geometry(self):
        a = np.zeros(8, dtype=np.uint8)
        b = np.ones(12, dtype=np.uint8)
        p1, p2 = crossover_provenance(a, b, 3, 5)
        assert [(s.parent_start, s.child_start, s.length) for s in p1.segments] == [
            (0, 0, 3),
            (5, 3, 7),
        ]
        assert [(s.parent_start, s.child_start, s.length) for s in p2.segments] == [
            (0, 0, 5),
            (3, 5, 5),
        ]
        assert p1.parent_keys() == (a.tobytes(), b.tobytes())

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            SequenceSegment(b"", 0, 0, 1)
        with pytest.raises(ValueError):
            SequenceSegment(b"x", -1, 0, 1)
        with pytest.raises(ValueError):
            SequenceSegment(b"x", 0, 0, 0)


class TestUpdateSimilarity:
    def test_point_mutation_exact(self, database):
        rng = np.random.default_rng(0)
        parent = rng.integers(0, 20, size=25).astype(np.uint8)
        parent_sim = database.sequence_similarity(parent)
        child = parent.copy()
        child[10] = (child[10] + 5) % 20
        prov = mutation_provenance(parent, [10])
        sources = [
            (parent_sim, s.parent_start, s.child_start, s.length)
            for s in prov.segments
        ]
        update = database.update_similarity(child, sources)
        _assert_exact(database, child, update)
        # Only the w windows covering the locus are dirty.
        assert update.rows_rescored == W
        assert update.rows_total == database.num_query_windows(child.size)

    def test_edge_mutation_exact(self, database):
        rng = np.random.default_rng(1)
        parent = rng.integers(0, 20, size=20).astype(np.uint8)
        parent_sim = database.sequence_similarity(parent)
        for locus in (0, parent.size - 1):
            child = parent.copy()
            child[locus] = (child[locus] + 1) % 20
            prov = mutation_provenance(parent, [locus])
            sources = [
                (parent_sim, s.parent_start, s.child_start, s.length)
                for s in prov.segments
            ]
            update = database.update_similarity(child, sources)
            _assert_exact(database, child, update)
            assert update.rows_rescored < update.rows_total

    def test_every_row_dirty_falls_back_to_full_sweep(self, database):
        rng = np.random.default_rng(2)
        child = rng.integers(0, 20, size=15).astype(np.uint8)
        update = database.update_similarity(child, [])
        _assert_exact(database, child, update)
        assert update.rows_rescored == update.rows_total

    def test_crossover_children_exact(self, database):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 20, size=22).astype(np.uint8)
        b = rng.integers(0, 20, size=17).astype(np.uint8)
        sim_a = database.sequence_similarity(a)
        sim_b = database.sequence_similarity(b)
        cut_a, cut_b = 9, 6
        child1 = np.concatenate([a[:cut_a], b[cut_b:]])
        child2 = np.concatenate([b[:cut_b], a[cut_a:]])
        p1, p2 = crossover_provenance(a, b, cut_a, cut_b)
        by_key = {a.tobytes(): sim_a, b.tobytes(): sim_b}
        for child, prov in ((child1, p1), (child2, p2)):
            sources = [
                (by_key[s.parent_key], s.parent_start, s.child_start, s.length)
                for s in prov.segments
            ]
            update = database.update_similarity(child, sources)
            _assert_exact(database, child, update)
            # Only the cut-straddling windows are re-swept.
            assert update.rows_rescored <= W - 1

    def test_partial_sources_still_exact(self, database):
        # One crossover parent evicted: its rows go dirty, result unchanged.
        rng = np.random.default_rng(4)
        a = rng.integers(0, 20, size=18).astype(np.uint8)
        b = rng.integers(0, 20, size=18).astype(np.uint8)
        sim_a = database.sequence_similarity(a)
        cut = 8
        child = np.concatenate([a[:cut], b[cut:]])
        update = database.update_similarity(child, [(sim_a, 0, 0, cut)])
        _assert_exact(database, child, update)
        assert update.rows_rescored > W - 1  # the missing parent's share

    def test_child_shorter_than_window(self, database):
        child = np.array([1, 2], dtype=np.uint8)
        update = database.update_similarity(child, [])
        assert update.similarity.num_windows == 0
        assert update.rows_total == 0

    def test_overrunning_segment_rejected(self, database):
        child = np.zeros(10, dtype=np.uint8)
        sim = database.sequence_similarity(child)
        with pytest.raises(ValueError, match="overruns"):
            database.update_similarity(child, [(sim, 0, 5, 8)])


class TestSimilarityLRU:
    def test_capacity_bound_and_eviction_order(self, database):
        lru = SimilarityLRU(2)
        rng = np.random.default_rng(5)
        seqs = [rng.integers(0, 20, size=10).astype(np.uint8) for _ in range(3)]
        for s in seqs:
            lru.put(s.tobytes(), database.sequence_similarity(s))
        assert len(lru) == 2
        assert lru.get(seqs[0].tobytes()) is None  # oldest evicted
        assert lru.get(seqs[2].tobytes()) is not None

    def test_cached_child_reuses_without_rescore(self, database):
        lru = SimilarityLRU(4)
        rng = np.random.default_rng(6)
        seq = rng.integers(0, 20, size=12).astype(np.uint8)
        sim, stats = lru.similarity_for(database, seq, None)
        assert stats is None  # no provenance, nothing to account
        again, stats2 = lru.similarity_for(database, seq, copy_provenance(seq))
        assert again is sim
        assert stats2 == DeltaStats(True, 0, database.num_query_windows(seq.size))

    def test_delta_route_when_parent_cached(self, database):
        lru = SimilarityLRU(4)
        rng = np.random.default_rng(7)
        parent = rng.integers(0, 20, size=16).astype(np.uint8)
        lru.put(parent.tobytes(), database.sequence_similarity(parent))
        child = parent.copy()
        child[8] = (child[8] + 3) % 20
        prov = mutation_provenance(parent, [8])
        sim, stats = lru.similarity_for(database, child, prov)
        assert stats.hit and 0 < stats.rows_rescored < stats.rows_total
        _assert_exact(database, child, type("U", (), {"similarity": sim})())
        # The child is now cached for the next generation.
        assert lru.get(child.tobytes()) is sim

    def test_fallback_when_no_parent_cached(self, database):
        lru = SimilarityLRU(4)
        rng = np.random.default_rng(8)
        parent = rng.integers(0, 20, size=14).astype(np.uint8)
        child = parent.copy()
        child[3] = (child[3] + 1) % 20
        prov = mutation_provenance(parent, [3])
        sim, stats = lru.similarity_for(database, child, prov)
        assert stats == DeltaStats(
            False,
            database.num_query_windows(child.size),
            database.num_query_windows(child.size),
        )
        expected = database.sequence_similarity(child)
        assert np.array_equal(sim.counts.toarray(), expected.counts.toarray())

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            SimilarityLRU(0)

    def test_provenance_pickles(self):
        import pickle

        prov = Provenance(
            "mutate", (SequenceSegment(b"abc", 0, 0, 3),)
        )
        assert pickle.loads(pickle.dumps(prov)) == prov
