"""Tests for fragment similarity scoring and threshold calibration."""

import numpy as np
import pytest

from repro.ppi.similarity import (
    calibrate_threshold,
    exact_threshold,
    random_match_score_pmf,
    similar_window_mask,
    window_similarity_scores,
    windowed_diagonal_sums,
)
from repro.sequences.encoding import encode
from repro.substitution import BLOSUM62, PAM120, SubstitutionMatrix


class TestWindowedDiagonalSums:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        s = rng.normal(size=(7, 9))
        w = 3
        out = windowed_diagonal_sums(s, w)
        assert out.shape == (5, 7)
        for i in range(5):
            for j in range(7):
                expected = sum(s[i + t, j + t] for t in range(w))
                assert out[i, j] == pytest.approx(expected)

    def test_window_one_is_identity(self):
        s = np.arange(12, dtype=float).reshape(3, 4)
        assert np.array_equal(windowed_diagonal_sums(s, 1), s)

    def test_empty_when_too_short(self):
        s = np.ones((2, 5))
        out = windowed_diagonal_sums(s, 3)
        assert out.shape == (0, 3)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            windowed_diagonal_sums(np.ones(5), 2)


class TestWindowSimilarityScores:
    def test_self_alignment_peak(self):
        seq = encode("MKTLLVWAC")
        scores = window_similarity_scores(seq, seq, 4, PAM120)
        # The diagonal holds perfect self-matches and dominates its row.
        for i in range(scores.shape[0]):
            assert scores[i, i] == scores[i].max()

    def test_known_value(self):
        a = encode("AAA")
        b = encode("AAA")
        out = window_similarity_scores(a, b, 3, PAM120)
        assert out.shape == (1, 1)
        assert out[0, 0] == 3 * PAM120.score("A", "A")

    def test_mask_thresholding(self):
        a = encode("WWWW")
        b = encode("WWWW")
        w_self = 4 * PAM120.score("W", "W")
        mask = similar_window_mask(a, b, 4, PAM120, w_self)
        assert mask[0, 0]
        mask2 = similar_window_mask(a, b, 4, PAM120, w_self + 1)
        assert not mask2[0, 0]


class TestExactThreshold:
    def test_pmf_normalised(self):
        support, pmf = random_match_score_pmf(PAM120, 4)
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf >= 0)
        assert support.size == pmf.size

    def test_pmf_support_bounds(self):
        support, _ = random_match_score_pmf(PAM120, 3)
        assert support[0] == 3 * PAM120.scores.min()
        assert support[-1] == 3 * PAM120.scores.max()

    def test_pmf_window_one_matches_direct(self):
        support, pmf = random_match_score_pmf(PAM120, 1)
        from repro.constants import YEAST_AA_FREQUENCIES as f

        joint = np.outer(f, f)
        for value in (-8, 0, 12):
            expected = joint[PAM120.scores == value].sum()
            got = pmf[support == value]
            assert got[0] == pytest.approx(expected)

    def test_threshold_respects_match_rate(self):
        support, pmf = random_match_score_pmf(PAM120, 5)
        for rate in (1e-2, 1e-4, 1e-6):
            thr = exact_threshold(PAM120, 5, match_rate=rate)
            actual = pmf[support >= thr].sum()
            assert actual <= rate

    def test_threshold_monotone_in_rate(self):
        t_loose = exact_threshold(PAM120, 5, match_rate=1e-2)
        t_tight = exact_threshold(PAM120, 5, match_rate=1e-6)
        assert t_tight > t_loose

    def test_threshold_grows_with_window(self):
        t4 = exact_threshold(PAM120, 4, match_rate=1e-4)
        t8 = exact_threshold(PAM120, 8, match_rate=1e-4)
        assert t8 > t4

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            exact_threshold(PAM120, 4, match_rate=0.0)
        with pytest.raises(ValueError):
            exact_threshold(PAM120, 4, match_rate=1.0)

    def test_non_integer_matrix_rejected(self):
        frac = SubstitutionMatrix("frac", PAM120.scores * 0.5)
        with pytest.raises(ValueError, match="integer"):
            random_match_score_pmf(frac, 3)


class TestCalibrateThreshold:
    def test_integer_matrix_uses_exact_path(self):
        assert calibrate_threshold(PAM120, 5, match_rate=1e-4) == exact_threshold(
            PAM120, 5, match_rate=1e-4
        )

    def test_sampling_fallback_for_fractional_matrix(self):
        frac = SubstitutionMatrix("frac", PAM120.scores * 0.5)
        thr = calibrate_threshold(frac, 4, match_rate=1e-2, samples=20_000)
        # Should be roughly half of the integer-matrix threshold.
        ref = calibrate_threshold(PAM120, 4, match_rate=1e-2)
        assert thr == pytest.approx(ref / 2, abs=2.0)

    def test_empirical_match_rate(self, rng):
        thr = calibrate_threshold(PAM120, 4, match_rate=1e-3)
        from repro.constants import NUM_AMINO_ACIDS, YEAST_AA_FREQUENCIES

        n = 200_000
        a = rng.choice(NUM_AMINO_ACIDS, size=(n, 4), p=YEAST_AA_FREQUENCIES)
        b = rng.choice(NUM_AMINO_ACIDS, size=(n, 4), p=YEAST_AA_FREQUENCIES)
        scores = PAM120.scores[a, b].sum(axis=1)
        rate = (scores >= thr).mean()
        assert rate <= 2e-3  # at most ~2x the target, sampling noise aside

    def test_blosum_threshold_also_works(self):
        thr = calibrate_threshold(BLOSUM62, 6, match_rate=1e-5)
        assert thr > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_threshold(PAM120, 4, match_rate=2.0)
        frac = SubstitutionMatrix("frac", PAM120.scores * 0.5)
        with pytest.raises(ValueError):
            calibrate_threshold(frac, 4, samples=10)
