"""End-to-end telemetry: a tiny design run exports the metrics the
scaling experiments need, and both providers report identically through
the shared caching base class."""

import numpy as np
import pytest

from repro.core.designer import InhibitorDesigner
from repro.ga.fitness import CachingScoreProvider, SerialScoreProvider
from repro.parallel.mp_backend import MultiprocessScoreProvider
from repro.telemetry import MetricsRegistry, export_jsonl, read_jsonl


@pytest.fixture()
def registry():
    return MetricsRegistry()


def test_design_run_exports_generation_metrics(tiny_world, registry, tmp_path):
    designer = InhibitorDesigner(
        tiny_world,
        population_size=8,
        candidate_length=24,
        non_target_limit=4,
        telemetry=registry,
    )
    try:
        generations = 3
        designer.design("YBL051C", seed=5, termination=generations)
    finally:
        tiny_world.engine.set_telemetry(None)  # session fixture: restore

    path = tmp_path / "design.jsonl"
    assert export_jsonl(registry, path) > 0
    records = read_jsonl(path)

    events = [r for r in records if r.get("event") == "ga.generation"]
    assert len(events) == generations
    for event in events:
        assert event["evaluations"] > 0
        assert 0.0 <= event["cache_hit_rate"] <= 1.0
        assert event["duration_s"] > 0.0
    assert [e["generation"] for e in events] == list(range(generations))

    metrics = {r["name"]: r for r in records if r.get("record") == "metric"}
    # PIPE kernel timings.
    for kernel in ("pipe.window_build", "pipe.triple_product", "pipe.box_filter"):
        assert metrics[kernel]["count"] > 0
        assert metrics[kernel]["total_s"] > 0.0
    # GA loop timings and fitness distribution.
    assert metrics["ga.evaluate"]["count"] == generations
    assert metrics["ga.fitness"]["count"] > 0
    # Cache traffic.
    assert metrics["provider.cache.misses"]["value"] > 0


def test_serial_and_parallel_identical_through_base(
    tiny_engine, tiny_problem, registry, rng
):
    target, non_targets = tiny_problem
    serial = SerialScoreProvider(tiny_engine, target, non_targets)
    seqs = [rng.integers(0, 20, size=25).astype(np.uint8) for _ in range(5)]
    with MultiprocessScoreProvider(
        tiny_engine,
        target,
        non_targets,
        num_workers=2,
        timeout=120.0,
        telemetry=registry,
    ) as parallel:
        assert isinstance(serial, CachingScoreProvider)
        assert isinstance(parallel, CachingScoreProvider)
        parallel_scores = parallel.scores(seqs)
        serial_scores = serial.scores(seqs)
        for p, s in zip(parallel_scores, serial_scores):
            assert p.target_score == pytest.approx(s.target_score)
            assert p.non_target_scores == pytest.approx(s.non_target_scores)
        # Both report the same cache accounting through the shared base.
        assert parallel.cache_stats["misses"] == serial.cache_stats["misses"] == 5
        # The master recorded per-worker throughput telemetry.
        stats = parallel.worker_stats()
        assert sum(int(w["items"]) for w in stats.values()) == 5
        snap = registry.snapshot()
        assert snap["parallel.batch"]["count"] == 1
        assert any(name.startswith("parallel.worker.") for name in snap)


def test_null_registry_design_run_records_nothing(tiny_world):
    designer = InhibitorDesigner(
        tiny_world,
        population_size=6,
        candidate_length=20,
        non_target_limit=2,
    )
    result = designer.design("YBL051C", seed=7, termination=2)
    assert result.fitness >= 0.0
    assert tiny_world.engine.telemetry.snapshot() == {}
