"""Unit tests for the metrics registry and the null registry's no-op
guarantees."""

import pickle
import time

import pytest

from repro.telemetry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
)


class TestCounters:
    def test_count_accumulates(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.count("a", 2)
        assert reg.counter("a").value == 3

    def test_counters_only_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.count("a", -1)

    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestGauges:
    def test_tracks_last_min_max(self):
        reg = MetricsRegistry()
        for v in (3, 1, 7):
            reg.set_gauge("depth", v)
        g = reg.gauge("depth")
        assert g.value == 7
        assert g.min == 1
        assert g.max == 7
        assert g.updates == 3


class TestHistograms:
    def test_streaming_stats(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0, 4.0):
            reg.observe("f", v)
        h = reg.histogram("f")
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.std == pytest.approx(1.118, abs=1e-3)
        assert h.min == 1.0 and h.max == 4.0

    def test_percentiles_from_reservoir(self):
        reg = MetricsRegistry()
        for v in range(101):
            reg.observe("f", float(v))
        h = reg.histogram("f")
        assert h.percentile(0) == 0.0
        assert h.percentile(50) == 50.0
        assert h.percentile(100) == 100.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_reservoir_bounded_but_stats_exact(self):
        reg = MetricsRegistry()
        h = reg.histogram("f", sample_limit=8)
        for v in range(100):
            h.observe(float(v))
        assert len(h.samples) == 8
        assert h.count == 100
        assert h.mean == pytest.approx(49.5)


class TestSpans:
    def test_records_count_and_time(self):
        reg = MetricsRegistry()
        with reg.span("work"):
            time.sleep(0.01)
        t = reg.timer("work")
        assert t.count == 1
        assert t.total >= 0.01
        assert t.self_total == pytest.approx(t.total)

    def test_nesting_attributes_self_time(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            time.sleep(0.005)
            with reg.span("inner"):
                time.sleep(0.01)
        outer = reg.timer("outer")
        inner = reg.timer("inner")
        assert outer.total >= inner.total
        # The parent's self time excludes the child's elapsed time.
        assert outer.self_total == pytest.approx(
            outer.total - inner.total, abs=1e-6
        )

    def test_current_span_tracks_stack(self):
        reg = MetricsRegistry()
        assert reg.current_span is None
        with reg.span("a"):
            assert reg.current_span == "a"
            with reg.span("b"):
                assert reg.current_span == "b"
            assert reg.current_span == "a"
        assert reg.current_span is None

    def test_span_survives_exceptions(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("boom"):
                raise RuntimeError("x")
        assert reg.timer("boom").count == 1
        assert reg.current_span is None


class TestEvents:
    def test_events_ordered_with_seq(self):
        reg = MetricsRegistry()
        reg.event("gen", generation=0)
        reg.event("gen", generation=1)
        events = reg.events
        assert [e["seq"] for e in events] == [0, 1]
        assert [e["generation"] for e in events] == [0, 1]


class TestSnapshotAndMerge:
    def test_snapshot_covers_all_kinds(self):
        reg = MetricsRegistry()
        reg.count("c")
        reg.set_gauge("g", 2.0)
        reg.observe("h", 1.0)
        with reg.span("t"):
            pass
        snap = reg.snapshot()
        assert snap["c"]["type"] == "counter"
        assert snap["g"]["type"] == "gauge"
        assert snap["h"]["type"] == "histogram"
        assert snap["t"]["type"] == "timer"

    def test_merge_aggregates(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.count("c", 2)
        b.count("c", 3)
        b.observe("h", 1.0)
        with b.span("t"):
            pass
        b.event("e")
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.histogram("h").count == 1
        assert a.timer("t").count == 1
        assert len(a.events) == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.count("c")
        reg.reset()
        assert reg.snapshot() == {}

    def test_picklable(self):
        reg = MetricsRegistry()
        reg.count("c", 4)
        with reg.span("t"):
            pass
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.counter("c").value == 4
        assert clone.timer("t").count == 1


class TestNullRegistry:
    def test_disabled_and_stateless(self):
        null = NullRegistry()
        assert null.enabled is False
        null.count("c", 5)
        null.set_gauge("g", 1.0)
        null.observe("h", 1.0)
        null.event("e", x=1)
        with null.span("t"):
            pass
        assert null.snapshot() == {}
        assert null.events == []
        # Reads behave like an empty registry.
        assert null.counter("c").value == 0
        assert null.timer("t").count == 0

    def test_span_is_shared_singleton(self):
        null = NullRegistry()
        assert null.span("a") is null.span("b")

    def test_null_is_registry_subtype(self):
        assert isinstance(NULL_REGISTRY, MetricsRegistry)

    def test_picklable(self):
        clone = pickle.loads(pickle.dumps(NULL_REGISTRY))
        assert clone.enabled is False


class TestDefaultRegistry:
    def test_defaults_to_null(self):
        assert get_registry() is NULL_REGISTRY

    def test_set_and_clear(self):
        reg = MetricsRegistry()
        try:
            assert set_registry(reg) is reg
            assert get_registry() is reg
        finally:
            set_registry(None)
        assert get_registry() is NULL_REGISTRY
