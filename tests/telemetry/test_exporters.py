"""Exporter round-trips: JSON-lines, CSV and the human summary."""

import csv

from repro.telemetry import (
    MetricsRegistry,
    NullRegistry,
    export_csv,
    export_jsonl,
    read_jsonl,
    summary,
)


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.count("provider.cache.hits", 3)
    reg.set_gauge("parallel.queue_depth", 7)
    reg.observe("ga.fitness", 0.25)
    reg.observe("ga.fitness", 0.75)
    with reg.span("pipe.triple_product"):
        pass
    reg.event("ga.generation", generation=0, best_fitness=0.5)
    return reg


class TestJsonl:
    def test_round_trip(self, tmp_path):
        reg = populated_registry()
        path = tmp_path / "metrics.jsonl"
        lines = export_jsonl(reg, path)
        records = read_jsonl(path)
        assert len(records) == lines == 5
        events = [r for r in records if r["record"] == "event"]
        metrics = {r["name"]: r for r in records if r["record"] == "metric"}
        assert events[0]["event"] == "ga.generation"
        assert events[0]["best_fitness"] == 0.5
        assert metrics["provider.cache.hits"]["value"] == 3
        assert metrics["ga.fitness"]["mean"] == 0.5
        assert metrics["pipe.triple_product"]["count"] == 1

    def test_events_precede_metrics(self, tmp_path):
        reg = populated_registry()
        path = tmp_path / "metrics.jsonl"
        export_jsonl(reg, path)
        kinds = [r["record"] for r in read_jsonl(path)]
        assert kinds == sorted(kinds, key=lambda k: k != "event")

    def test_null_registry_exports_nothing(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert export_jsonl(NullRegistry(), path) == 0
        assert read_jsonl(path) == []


class TestCsv:
    def test_rows_parse(self, tmp_path):
        reg = populated_registry()
        path = tmp_path / "metrics.csv"
        rows = export_csv(reg, path)
        with open(path, newline="") as fh:
            parsed = list(csv.DictReader(fh))
        assert len(parsed) == rows
        hit_rows = [r for r in parsed if r["name"] == "provider.cache.hits"]
        assert hit_rows[0]["type"] == "counter"
        assert float(hit_rows[0]["value"]) == 3.0


class TestSummary:
    def test_mentions_every_instrument(self):
        text = summary(populated_registry())
        for needle in (
            "pipe.triple_product",
            "provider.cache.hits",
            "parallel.queue_depth",
            "ga.fitness",
            "ga.generation",
        ):
            assert needle in text

    def test_empty_registry(self):
        assert "no telemetry" in summary(MetricsRegistry())

    def test_writes_to_stream(self, tmp_path):
        path = tmp_path / "summary.txt"
        with open(path, "w") as fh:
            text = summary(populated_registry(), stream=fh)
        assert path.read_text().strip() == text.strip()
