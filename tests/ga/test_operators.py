"""Tests for the copy/mutate/crossover operators."""

import numpy as np
import pytest

from repro.ga.operators import (
    crossover,
    crossover_cut_range,
    mutate,
    point_copy,
)


class TestCopy:
    def test_copies_values(self):
        src = np.array([1, 2, 3], dtype=np.uint8)
        out = point_copy(src)
        assert np.array_equal(out, src)

    def test_independent_storage(self):
        src = np.array([1, 2, 3], dtype=np.uint8)
        out = point_copy(src)
        out[0] = 9
        assert src[0] == 1


class TestMutate:
    def test_zero_rate_identity(self, rng):
        seq = np.arange(10, dtype=np.uint8)
        assert np.array_equal(mutate(seq, 0.0, rng), seq)

    def test_full_rate_changes_every_position(self, rng):
        seq = np.arange(20, dtype=np.uint8)
        out = mutate(seq, 1.0, rng)
        assert not np.any(out == seq)

    def test_values_stay_in_alphabet(self, rng):
        seq = np.arange(20, dtype=np.uint8)
        out = mutate(seq, 1.0, rng)
        assert out.min() >= 0 and out.max() < 20

    def test_original_untouched(self, rng):
        seq = np.arange(10, dtype=np.uint8)
        before = seq.copy()
        mutate(seq, 1.0, rng)
        assert np.array_equal(seq, before)

    def test_expected_rate(self, rng):
        seq = np.zeros(10_000, dtype=np.uint8)
        out = mutate(seq, 0.05, rng)
        rate = (out != seq).mean()
        assert 0.03 < rate < 0.07

    def test_rate_validation(self, rng):
        with pytest.raises(ValueError):
            mutate(np.zeros(5, dtype=np.uint8), 1.5, rng)

    def test_deterministic_with_seed(self):
        seq = np.arange(30, dtype=np.uint8)
        a = mutate(seq, 0.5, np.random.default_rng(5))
        b = mutate(seq, 0.5, np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestCutRange:
    def test_margin_respected(self):
        lo, hi = crossover_cut_range(100, 0.1)
        assert lo == 10
        assert hi == 91  # exclusive

    def test_zero_margin(self):
        lo, hi = crossover_cut_range(10, 0.0)
        assert (lo, hi) == (1, 10)

    def test_short_sequence_fallback(self):
        lo, hi = crossover_cut_range(3, 0.45)
        assert lo >= 1 and hi <= 3 + 1
        assert lo < hi

    def test_minimum_length(self):
        with pytest.raises(ValueError):
            crossover_cut_range(1, 0.1)


class TestCrossover:
    def test_equal_length_children(self, rng):
        a = np.zeros(50, dtype=np.uint8)
        b = np.ones(50, dtype=np.uint8)
        c1, c2 = crossover(a, b, 0.1, rng)
        assert c1.size == 50 and c2.size == 50

    def test_children_are_prefix_suffix_swaps(self, rng):
        a = np.zeros(40, dtype=np.uint8)
        b = np.ones(40, dtype=np.uint8)
        c1, c2 = crossover(a, b, 0.1, rng)
        # c1 = zeros then ones; c2 = ones then zeros, same cut.
        cut = int(np.argmax(c1 == 1))
        assert np.all(c1[:cut] == 0) and np.all(c1[cut:] == 1)
        assert np.all(c2[:cut] == 1) and np.all(c2[cut:] == 0)

    def test_cut_respects_margin(self, rng):
        a = np.zeros(100, dtype=np.uint8)
        b = np.ones(100, dtype=np.uint8)
        for _ in range(50):
            c1, _ = crossover(a, b, 0.2, rng)
            cut = int(np.argmax(c1 == 1))
            assert 20 <= cut <= 80

    def test_total_material_conserved(self, rng):
        a = np.full(30, 3, dtype=np.uint8)
        b = np.full(30, 7, dtype=np.uint8)
        c1, c2 = crossover(a, b, 0.1, rng)
        combined = np.concatenate([c1, c2])
        assert (combined == 3).sum() == 30
        assert (combined == 7).sum() == 30

    def test_unequal_lengths_proportional(self, rng):
        a = np.zeros(100, dtype=np.uint8)
        b = np.ones(10, dtype=np.uint8)
        c1, c2 = crossover(a, b, 0.1, rng)
        # Material is conserved overall and both children are non-trivial.
        assert c1.size + c2.size == 110
        assert 1 < c1.size < 109
        assert 1 < c2.size < 109
        # Child 1 leads with parent A's prefix, child 2 with parent B's.
        assert c1[0] == 0 and c2[0] == 1

    def test_parents_untouched(self, rng):
        a = np.zeros(20, dtype=np.uint8)
        b = np.ones(20, dtype=np.uint8)
        crossover(a, b, 0.1, rng)
        assert np.all(a == 0) and np.all(b == 1)

    def test_too_short_rejected(self, rng):
        with pytest.raises(ValueError):
            crossover(np.zeros(1, dtype=np.uint8), np.ones(5, dtype=np.uint8), 0.1, rng)
