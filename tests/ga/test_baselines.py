"""Tests for the baseline search algorithms and tournament selection."""

import numpy as np
import pytest

from repro.ga.baselines import HillClimbBaseline, RandomSearchBaseline
from repro.ga.config import GAParams
from repro.ga.engine import InSiPSEngine
from repro.ga.fitness import ScoreProvider, ScoreSet
from repro.ga.population import Individual, Population
from repro.ga.selection import tournament_select


class TrivialProvider(ScoreProvider):
    """Target = fraction of residue 0: smooth, easily climbable."""

    def __init__(self):
        self.calls = 0

    def scores(self, sequences):
        self.calls += len(sequences)
        return [
            ScoreSet(float((np.asarray(s) == 0).mean()), (0.1,))
            for s in sequences
        ]


class TestRandomSearch:
    def test_runs_with_history(self):
        result = RandomSearchBaseline(
            TrivialProvider(), population_size=10, candidate_length=20, seed=1
        ).run(8)
        assert result.generations == 8
        assert result.evaluations == 80
        assert 0.0 <= result.best_fitness <= 1.0

    def test_no_learning_on_average(self):
        """Random search cannot climb: its per-generation best is flat in
        expectation (we accept a weak bound over a short run)."""
        result = RandomSearchBaseline(
            TrivialProvider(), population_size=20, candidate_length=30, seed=2
        ).run(20)
        curve = result.history.best_fitness_curve()
        first_half = curve[:10].mean()
        second_half = curve[10:].mean()
        assert abs(second_half - first_half) < 0.1

    def test_deterministic(self):
        a = RandomSearchBaseline(
            TrivialProvider(), population_size=5, candidate_length=15, seed=4
        ).run(5)
        b = RandomSearchBaseline(
            TrivialProvider(), population_size=5, candidate_length=15, seed=4
        ).run(5)
        assert a.best_fitness == b.best_fitness


class TestHillClimb:
    def test_monotone_running_best(self):
        result = HillClimbBaseline(
            TrivialProvider(), population_size=8, candidate_length=20, seed=3
        ).run(20)
        running = result.history.running_best()
        assert np.all(np.diff(running) >= 0)
        assert result.best_fitness > result.history.stats[0].best_fitness

    def test_climbs_the_trivial_landscape(self):
        result = HillClimbBaseline(
            TrivialProvider(), population_size=10, candidate_length=20, seed=5
        ).run(40)
        assert result.best_fitness > 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            HillClimbBaseline(
                TrivialProvider(),
                population_size=5,
                candidate_length=20,
                p_mutate_aa=0.0,
            )
        with pytest.raises(ValueError):
            RandomSearchBaseline(
                TrivialProvider(), population_size=0, candidate_length=20
            )


class TestGABeatsBaselines:
    def test_ga_beats_random_search_at_equal_budget(self):
        """On a smooth landscape, inheritance compounds: at equal budget
        the GA must clearly outperform memoryless random search."""
        budget_pop, budget_gens = 20, 50
        ga = InSiPSEngine(
            TrivialProvider(),
            GAParams(),
            population_size=budget_pop,
            candidate_length=30,
            seed=7,
        ).run(budget_gens)
        rs = RandomSearchBaseline(
            TrivialProvider(),
            population_size=budget_pop,
            candidate_length=30,
            seed=7,
        ).run(budget_gens)
        assert ga.best_fitness > rs.best_fitness + 0.05

    def test_hill_climbing_also_beats_random_search(self):
        """Both inheritance-based searches dominate random search on the
        smooth landscape; hill climbing is the stronger of the two there
        (elitist and focused — the GA's edge lies on rugged, multi-modal
        landscapes and at the paper's full scale, not this toy)."""
        hc = HillClimbBaseline(
            TrivialProvider(), population_size=16, candidate_length=24, seed=8
        ).run(30)
        rs = RandomSearchBaseline(
            TrivialProvider(), population_size=16, candidate_length=24, seed=8
        ).run(30)
        assert hc.best_fitness > rs.best_fitness + 0.05


class TestTournamentSelection:
    def _pop(self, fitnesses):
        members = []
        for i, f in enumerate(fitnesses):
            ind = Individual(np.array([i + 1], dtype=np.uint8))
            ind.fitness = f
            ind.target_score = f
            ind.max_non_target = 0.0
            ind.avg_non_target = 0.0
            members.append(ind)
        return Population(members)

    def test_prefers_fitter_members(self, rng):
        pop = self._pop([0.1, 0.9, 0.2, 0.3])
        picks = tournament_select(pop, rng, 2000, tournament_size=3)
        frac_best = np.mean([p == 1 for p in picks])
        assert frac_best > 0.5

    def test_larger_tournament_more_pressure(self, rng):
        pop = self._pop([0.1, 0.9, 0.2, 0.3])
        weak = tournament_select(pop, np.random.default_rng(0), 2000, tournament_size=2)
        strong = tournament_select(pop, np.random.default_rng(0), 2000, tournament_size=5)
        assert np.mean([p == 1 for p in strong]) > np.mean([p == 1 for p in weak])

    def test_scale_invariance_vs_roulette(self, rng):
        """Tournament keeps pressure when fitness values converge;
        roulette's flattens — the classic difference."""
        from repro.ga.selection import roulette_select

        pop = self._pop([0.90, 0.91, 0.90, 0.905])
        t_picks = tournament_select(pop, np.random.default_rng(1), 3000, tournament_size=3)
        r_picks = roulette_select(pop, np.random.default_rng(1), 3000)
        t_frac = np.mean([p == 1 for p in t_picks])
        r_frac = np.mean([p == 1 for p in r_picks])
        assert t_frac > r_frac

    def test_validation(self, rng):
        pop = self._pop([0.5])
        with pytest.raises(ValueError):
            tournament_select(pop, rng, 0)
        with pytest.raises(ValueError):
            tournament_select(pop, rng, 1, tournament_size=0)
        with pytest.raises(ValueError):
            tournament_select(Population(), rng, 1)
