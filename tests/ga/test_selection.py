"""Tests for roulette-wheel selection."""

import numpy as np
import pytest

from repro.ga.population import Individual, Population
from repro.ga.selection import roulette_select, selection_probabilities


def _pop(fitnesses):
    members = []
    for i, f in enumerate(fitnesses):
        ind = Individual(np.array([i + 1], dtype=np.uint8))
        ind.fitness = f
        ind.target_score = f
        ind.max_non_target = 0.0
        ind.avg_non_target = 0.0
        members.append(ind)
    return Population(members)


class TestProbabilities:
    def test_proportional(self):
        p = selection_probabilities(np.array([1.0, 3.0]))
        assert p == pytest.approx([0.25, 0.75])

    def test_zero_total_uniform(self):
        p = selection_probabilities(np.zeros(4))
        assert p == pytest.approx([0.25] * 4)

    def test_negative_clipped(self):
        p = selection_probabilities(np.array([-1.0, 1.0]))
        assert p == pytest.approx([0.0, 1.0])

    def test_empty(self):
        assert selection_probabilities(np.array([])).size == 0


class TestRoulette:
    def test_count(self, rng):
        pop = _pop([0.5, 0.5, 0.5])
        assert len(roulette_select(pop, rng, 7)) == 7

    def test_proportional_sampling(self, rng):
        pop = _pop([0.1, 0.9])
        picks = roulette_select(pop, rng, 5000)
        frac_second = np.mean([p == 1 for p in picks])
        assert 0.85 < frac_second < 0.95

    def test_zero_fitness_population_still_selects(self, rng):
        pop = _pop([0.0, 0.0, 0.0])
        picks = roulette_select(pop, rng, 300)
        assert set(picks) == {0, 1, 2}

    def test_with_replacement(self, rng):
        pop = _pop([1.0, 0.0])
        picks = roulette_select(pop, rng, 10)
        assert all(p == 0 for p in picks)

    def test_validation(self, rng):
        pop = _pop([0.5])
        with pytest.raises(ValueError):
            roulette_select(pop, rng, 0)
        with pytest.raises(ValueError):
            roulette_select(Population(), rng, 1)

    def test_requires_evaluated(self, rng):
        pop = Population([Individual(np.array([1], dtype=np.uint8))])
        with pytest.raises(ValueError):
            roulette_select(pop, rng, 1)
