"""Tests for the fitness function and score providers."""

import numpy as np
import pytest

from repro.ga.fitness import (
    CachingScoreProvider,
    FitnessFunction,
    ScoreProvider,
    ScoreSet,
    SerialScoreProvider,
    combine_scores,
)
from repro.ga.population import Individual
from repro.telemetry import MetricsRegistry


class TestScoreSet:
    def test_max_and_avg(self):
        s = ScoreSet(0.8, (0.1, 0.4, 0.2))
        assert s.max_non_target == 0.4
        assert s.avg_non_target == pytest.approx(0.7 / 3)

    def test_no_non_targets(self):
        s = ScoreSet(0.8, ())
        assert s.max_non_target == 0.0
        assert s.avg_non_target == 0.0

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            ScoreSet(1.5, ())
        with pytest.raises(ValueError):
            ScoreSet(0.5, (0.2, -0.1))


class TestCombine:
    def test_formula(self):
        # The exact Sec. 2.2 formula.
        s = ScoreSet(0.6309, (0.3978, 0.05))
        assert combine_scores(s) == pytest.approx((1 - 0.3978) * 0.6309)

    def test_paper_examples(self):
        # anti-YBL051C: fitness 0.379912 from target 0.6309, max nt 0.3978.
        assert combine_scores(ScoreSet(0.6309, (0.3978,))) == pytest.approx(
            0.3799, abs=1e-3
        )
        # anti-YAL017W: fitness 0.4652 from target 0.7183, max nt 0.3524.
        assert combine_scores(ScoreSet(0.7183, (0.3524,))) == pytest.approx(
            0.4652, abs=1e-3
        )

    def test_perfect_design(self):
        assert combine_scores(ScoreSet(1.0, (0.0,))) == 1.0

    def test_sticky_design_penalised(self):
        # Binding everything is worthless.
        assert combine_scores(ScoreSet(1.0, (1.0,))) == 0.0


class TestSerialProvider:
    def test_scores_are_well_formed(self, tiny_provider, rng):
        seqs = [rng.integers(0, 20, size=30).astype(np.uint8) for _ in range(3)]
        out = tiny_provider.scores(seqs)
        assert len(out) == 3
        for s in out:
            assert 0.0 <= s.target_score <= 1.0
            assert len(s.non_target_scores) == len(tiny_provider.non_targets)

    def test_cache_hit_on_repeat(self, tiny_provider, rng):
        seq = rng.integers(0, 20, size=30).astype(np.uint8)
        first = tiny_provider.scores([seq])[0]
        again = tiny_provider.scores([seq.copy()])[0]
        assert first is again
        assert tiny_provider.cache_stats["hits"] == 1

    def test_matches_engine_directly(self, tiny_provider, tiny_engine, rng):
        seq = rng.integers(0, 20, size=30).astype(np.uint8)
        out = tiny_provider.scores([seq])[0]
        assert out.target_score == pytest.approx(
            tiny_engine.score(seq, tiny_provider.target)
        )
        for nt, score in zip(tiny_provider.non_targets, out.non_target_scores):
            assert score == pytest.approx(tiny_engine.score(seq, nt))

    def test_target_in_non_targets_rejected(self, tiny_engine, tiny_problem):
        target, nts = tiny_problem
        with pytest.raises(ValueError, match="non-target"):
            SerialScoreProvider(tiny_engine, target, [target, *nts])

    def test_unknown_names_fail_fast(self, tiny_engine):
        with pytest.raises(KeyError):
            SerialScoreProvider(tiny_engine, "NOPE", [])
        with pytest.raises(KeyError):
            SerialScoreProvider(tiny_engine, "YBL051C", ["NOPE"])

    def test_cache_eviction(self, tiny_engine, tiny_problem, rng):
        target, nts = tiny_problem
        provider = SerialScoreProvider(tiny_engine, target, nts[:2], cache_size=2)
        for _ in range(4):
            provider.scores([rng.integers(0, 20, size=20).astype(np.uint8)])
        assert provider.cache_len <= 2
        assert provider.cache_stats["evictions"] >= 2

    def test_lru_keeps_hot_entries(self, tiny_engine, tiny_problem, rng):
        """A full cache evicts the *least recently used* entry, not the
        whole cache (the old epoch eviction threw away every hot entry)."""
        target, nts = tiny_problem
        provider = SerialScoreProvider(tiny_engine, target, nts[:2], cache_size=2)
        hot = rng.integers(0, 20, size=20).astype(np.uint8)
        cold = rng.integers(0, 20, size=20).astype(np.uint8)
        provider.scores([hot])
        provider.scores([cold])
        provider.scores([hot])  # touch: hot is now most recently used
        new = rng.integers(0, 20, size=20).astype(np.uint8)
        provider.scores([new])  # evicts cold, not hot
        misses_before = provider.cache_stats["misses"]
        provider.scores([hot])
        assert provider.cache_stats["misses"] == misses_before  # still cached
        provider.scores([cold])
        assert provider.cache_stats["misses"] == misses_before + 1  # evicted

    def test_duplicates_within_batch_scored_once(self, tiny_engine, tiny_problem, rng):
        target, nts = tiny_problem
        provider = SerialScoreProvider(tiny_engine, target, nts[:2])
        seq = rng.integers(0, 20, size=20).astype(np.uint8)
        out = provider.scores([seq, seq.copy(), seq.copy()])
        assert out[0] == out[1] == out[2]
        assert provider.cache_stats["misses"] == 1
        assert provider.cache_stats["hits"] == 2

    def test_small_cache_fills_duplicates_in_batch(
        self, tiny_engine, tiny_problem, rng
    ):
        """Regression: with cache_size smaller than the batch's fresh
        entries, the duplicate fill read the cache after the fresh entry
        had already been LRU-evicted and raised KeyError."""
        target, nts = tiny_problem
        provider = SerialScoreProvider(tiny_engine, target, nts[:2], cache_size=1)
        a = rng.integers(0, 20, size=20).astype(np.uint8)
        b = rng.integers(0, 20, size=20).astype(np.uint8)
        out = provider.scores([a, b, a.copy(), b.copy()])
        assert out[0] == out[2]
        assert out[1] == out[3]
        reference = SerialScoreProvider(tiny_engine, target, nts[:2])
        want_a, want_b = reference.scores([a, b])
        assert out[0] == want_a
        assert out[1] == want_b

    def test_context_manager(self, tiny_engine, tiny_problem):
        target, nts = tiny_problem
        with SerialScoreProvider(tiny_engine, target, nts[:1]) as p:
            assert isinstance(p, ScoreProvider)
            assert not p.closed
        assert p.closed

    def test_deprecated_cache_attributes(self, tiny_engine, tiny_problem, rng):
        target, nts = tiny_problem
        provider = SerialScoreProvider(tiny_engine, target, nts[:1])
        provider.scores([rng.integers(0, 20, size=20).astype(np.uint8)])
        with pytest.warns(DeprecationWarning):
            assert provider.cache_hits == 0
        with pytest.warns(DeprecationWarning):
            assert provider.cache_misses == 1

    def test_cache_telemetry_counters(self, tiny_engine, tiny_problem, rng):
        target, nts = tiny_problem
        registry = MetricsRegistry()
        provider = SerialScoreProvider(
            tiny_engine, target, nts[:1], telemetry=registry
        )
        seq = rng.integers(0, 20, size=20).astype(np.uint8)
        provider.scores([seq])
        provider.scores([seq.copy()])
        assert registry.counter("provider.cache.misses").value == 1
        assert registry.counter("provider.cache.hits").value == 1
        assert provider.cache_hit_rate == pytest.approx(0.5)

    def test_is_caching_provider(self, tiny_provider):
        assert isinstance(tiny_provider, CachingScoreProvider)


class TestFitnessFunction:
    def test_evaluates_pending_only(self, tiny_provider, rng):
        fn = FitnessFunction(tiny_provider)
        done = Individual(rng.integers(0, 20, size=20).astype(np.uint8))
        done.fitness = 0.42
        done.target_score = 0.5
        done.max_non_target = 0.1
        done.avg_non_target = 0.05
        fresh = Individual(rng.integers(0, 20, size=20).astype(np.uint8))
        fn.evaluate([done, fresh])
        assert done.fitness == 0.42  # untouched
        assert fresh.evaluated

    def test_fills_all_statistics(self, tiny_provider, rng):
        fn = FitnessFunction(tiny_provider)
        ind = Individual(rng.integers(0, 20, size=20).astype(np.uint8))
        fn([ind])
        assert ind.fitness == pytest.approx(
            (1 - ind.max_non_target) * ind.target_score
        )
        assert ind.avg_non_target <= ind.max_non_target

    def test_empty_batch_noop(self, tiny_provider):
        FitnessFunction(tiny_provider).evaluate([])

    def test_provider_length_mismatch_detected(self):
        class Broken(ScoreProvider):
            def scores(self, sequences):
                return []

        fn = FitnessFunction(Broken())
        ind = Individual(np.array([1, 2], dtype=np.uint8))
        with pytest.raises(RuntimeError, match="returned 0"):
            fn.evaluate([ind])


class TestSerialDelta:
    """The serial provider's provenance-based delta scoring."""

    def test_delta_scores_match_full_sweep(self, tiny_engine, tiny_problem, rng):
        from repro.ppi.delta import mutation_provenance
        from repro.telemetry import MetricsRegistry

        target, non_targets = tiny_problem
        tel = MetricsRegistry()
        delta = SerialScoreProvider(
            tiny_engine, target, non_targets, telemetry=tel
        )
        full = SerialScoreProvider(
            tiny_engine, target, non_targets, use_delta=False
        )
        parent = rng.integers(0, 20, size=30).astype(np.uint8)
        child = parent.copy()
        child[12] = (child[12] + 7) % 20
        prov = mutation_provenance(parent, [12])
        # Parent scored first so its similarity structure is cached.
        d = delta.scores_with_provenance([parent, child], [None, prov])
        f = full.scores_with_provenance([parent, child], [None, prov])
        for a, b in zip(d, f):
            assert a.target_score == b.target_score
            assert a.non_target_scores == b.non_target_scores
        counters = tel.snapshot()
        assert counters["pipe.delta.hits"]["value"] > 0

    def test_fallback_counted_when_parent_unknown(
        self, tiny_engine, tiny_problem, rng
    ):
        from repro.ga.operators import mutate_with_provenance
        from repro.telemetry import MetricsRegistry

        target, non_targets = tiny_problem
        tel = MetricsRegistry()
        provider = SerialScoreProvider(
            tiny_engine, target, non_targets, telemetry=tel
        )
        parent = rng.integers(0, 20, size=30).astype(np.uint8)
        child, prov = mutate_with_provenance(parent, 0.1, rng)
        provider.scores_with_provenance([child], [prov])  # parent never scored
        counters = tel.snapshot()
        assert counters["pipe.delta.fallbacks"]["value"] == 1

    def test_use_delta_false_records_nothing(self, tiny_engine, tiny_problem, rng):
        from repro.ga.operators import mutate_with_provenance
        from repro.telemetry import MetricsRegistry

        target, non_targets = tiny_problem
        tel = MetricsRegistry()
        provider = SerialScoreProvider(
            tiny_engine, target, non_targets, use_delta=False, telemetry=tel
        )
        parent = rng.integers(0, 20, size=30).astype(np.uint8)
        child, prov = mutate_with_provenance(parent, 0.1, rng)
        provider.scores_with_provenance([parent, child], [None, prov])
        counters = tel.snapshot()
        assert "pipe.delta.hits" not in counters
        assert "pipe.delta.fallbacks" not in counters

    def test_plain_scores_unaffected_by_delta_machinery(
        self, tiny_engine, tiny_problem, rng
    ):
        target, non_targets = tiny_problem
        a = SerialScoreProvider(tiny_engine, target, non_targets)
        b = SerialScoreProvider(tiny_engine, target, non_targets, use_delta=False)
        seqs = [rng.integers(0, 20, size=25).astype(np.uint8) for _ in range(4)]
        for x, y in zip(a.scores(seqs), b.scores(seqs)):
            assert x.target_score == y.target_score
            assert x.non_target_scores == y.non_target_scores
