"""Operator-application accounting, shared across both engine kinds.

The adaptive engine's reimplemented breeding loop historically skipped the
``ga.op.*`` counters the base engine emits, so ``repro stats`` reported
zero operator applications for adaptive runs.  This test pins the
contract for every engine.
"""

import numpy as np
import pytest

from repro.ga.adaptive import AdaptiveInSiPSEngine
from repro.ga.config import GAParams
from repro.ga.engine import InSiPSEngine
from repro.ga.fitness import ScoreProvider, ScoreSet
from repro.telemetry import MetricsRegistry


class FractionProvider(ScoreProvider):
    def scores(self, sequences):
        return [
            ScoreSet(float((np.asarray(seq) == 0).mean()), (0.1,))
            for seq in sequences
        ]


@pytest.mark.parametrize(
    "engine_cls", [InSiPSEngine, AdaptiveInSiPSEngine]
)
def test_engines_count_every_operator(engine_cls):
    registry = MetricsRegistry()
    engine = engine_cls(
        FractionProvider(),
        GAParams(),
        population_size=20,
        candidate_length=16,
        seed=5,
        telemetry=registry,
    )
    engine.run(6)
    counters = registry.snapshot()
    applied = {
        op: counters.get(f"ga.op.{op}", {}).get("value", 0)
        for op in ("copy", "mutate", "crossover")
    }
    assert all(count > 0 for count in applied.values()), applied
    # Breeding happened 5 times for 6 generations of 20 members; every
    # slot (modulo the crossover surplus child) is one counted draw.
    assert sum(applied.values()) >= 5 * (20 // 2)
