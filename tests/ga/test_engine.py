"""Tests for the InSiPS GA engine."""

import numpy as np
import pytest

from repro.ga.config import GAParams
from repro.ga.engine import InSiPSEngine
from repro.ga.fitness import ScoreProvider, ScoreSet
from repro.ga.termination import MaxGenerations


class CountingProvider(ScoreProvider):
    """Deterministic synthetic provider: target score is the fraction of
    residue 0 in the sequence — an easily optimisable landscape."""

    def __init__(self):
        self.calls = 0

    def scores(self, sequences):
        self.calls += len(sequences)
        out = []
        for seq in sequences:
            frac = float((np.asarray(seq) == 0).mean())
            out.append(ScoreSet(frac, (0.1,)))
        return out


def _engine(provider=None, seed=7, pop=10, length=20, params=None):
    return InSiPSEngine(
        provider or CountingProvider(),
        params or GAParams(),
        population_size=pop,
        candidate_length=length,
        seed=seed,
    )


class TestInitialPopulation:
    def test_size_and_lengths(self):
        pop = _engine().initial_population()
        assert len(pop) == 10
        assert all(len(m) == 20 for m in pop)
        assert pop.generation == 0

    def test_seeded_reproducibility(self):
        a = _engine(seed=3).initial_population()
        b = _engine(seed=3).initial_population()
        assert all(
            np.array_equal(x.encoded, y.encoded) for x, y in zip(a, b)
        )

    def test_distinct_members(self):
        pop = _engine().initial_population()
        keys = {m.key for m in pop}
        assert len(keys) > 1


class TestNextGeneration:
    def test_size_preserved(self):
        engine = _engine()
        pop = engine.initial_population()
        engine.evaluate_population(pop)
        nxt = engine.next_generation(pop)
        assert len(nxt) == len(pop)
        assert nxt.generation == 1

    def test_copy_preserves_scores(self):
        engine = _engine(params=GAParams(p_copy=1.0, p_mutate=0.0, p_crossover=0.0))
        pop = engine.initial_population()
        engine.evaluate_population(pop)
        nxt = engine.next_generation(pop)
        # Every member of the next generation is a copy and keeps scores.
        assert all(m.evaluated for m in nxt)
        parent_keys = {m.key for m in pop}
        assert all(m.key in parent_keys for m in nxt)

    def test_mutate_only_generation_unevaluated(self):
        engine = _engine(params=GAParams(p_copy=0.0, p_mutate=1.0, p_crossover=0.0))
        pop = engine.initial_population()
        engine.evaluate_population(pop)
        nxt = engine.next_generation(pop)
        assert all(not m.evaluated for m in nxt)

    def test_crossover_only_generation(self):
        engine = _engine(params=GAParams(p_copy=0.0, p_mutate=0.0, p_crossover=1.0))
        pop = engine.initial_population()
        engine.evaluate_population(pop)
        nxt = engine.next_generation(pop)
        assert len(nxt) == len(pop)
        assert all(len(m) == 20 for m in nxt)


class TestRun:
    def test_improves_on_trivial_landscape(self):
        provider = CountingProvider()
        engine = _engine(provider, pop=30)
        result = engine.run(25)
        first = result.history.stats[0].best_fitness
        assert result.best_fitness > first
        assert result.best_fitness > 0.3

    def test_generation_count_and_evaluations(self):
        provider = CountingProvider()
        engine = _engine(provider)
        result = engine.run(MaxGenerations(5))
        assert result.generations == 5
        assert result.evaluations == engine.evaluations
        assert result.evaluations <= 5 * 10
        assert provider.calls == result.evaluations

    def test_int_termination_shorthand(self):
        result = _engine().run(3)
        assert result.generations == 3

    def test_best_tracked_across_generations(self):
        result = _engine(pop=20).run(10)
        curve = result.history.best_fitness_curve()
        assert result.best_fitness == pytest.approx(curve.max())

    def test_on_generation_callback(self):
        seen = []
        _engine().run(4, on_generation=lambda pop, stats: seen.append(stats.generation))
        assert seen == [0, 1, 2, 3]

    def test_seeded_runs_identical(self):
        r1 = _engine(seed=11).run(5)
        r2 = _engine(seed=11).run(5)
        assert np.array_equal(r1.best.encoded, r2.best.encoded)
        assert r1.history.best_fitness_curve().tolist() == r2.history.best_fitness_curve().tolist()

    def test_different_seeds_diverge(self):
        r1 = _engine(seed=1).run(5)
        r2 = _engine(seed=2).run(5)
        assert not np.array_equal(r1.best.encoded, r2.best.encoded)


class TestValidation:
    def test_population_size(self):
        with pytest.raises(ValueError):
            _engine(pop=1)

    def test_candidate_length(self):
        with pytest.raises(ValueError):
            _engine(length=1)
