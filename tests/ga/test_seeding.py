"""Tests for initial-population seeding strategies."""

import numpy as np
import pytest

from repro.ga.config import GAParams
from repro.ga.engine import InSiPSEngine
from repro.ga.fitness import ScoreProvider, ScoreSet
from repro.ga.seeding import (
    ProteinFragmentInitializer,
    RandomInitializer,
    WarmStartInitializer,
)
from repro.sequences.protein import Protein


class _Provider(ScoreProvider):
    def scores(self, sequences):
        return [
            ScoreSet(float((np.asarray(s) == 0).mean()), (0.1,))
            for s in sequences
        ]


@pytest.fixture()
def proteins():
    return [Protein("P1", "W" * 40), Protein("P2", "C" * 25)]


class TestRandomInitializer:
    def test_shape(self, rng):
        pop = RandomInitializer().population(12, 30, rng)
        assert len(pop) == 12
        assert all(len(m) == 30 for m in pop)

    def test_matches_engine_default(self):
        """The engine without an explicit initializer produces the same
        generation 0 as an explicit RandomInitializer (same seed)."""
        default = InSiPSEngine(
            _Provider(), GAParams(), population_size=6, candidate_length=15, seed=3
        ).initial_population()
        explicit = InSiPSEngine(
            _Provider(),
            GAParams(),
            population_size=6,
            candidate_length=15,
            seed=3,
            initializer=RandomInitializer(),
        ).initial_population()
        for a, b in zip(default, explicit):
            assert np.array_equal(a.encoded, b.encoded)


class TestFragmentInitializer:
    def test_fragments_visible(self, proteins, rng):
        init = ProteinFragmentInitializer(proteins, fragment_fraction=0.5)
        pop = init.population(20, 30, rng)
        # Half of each candidate is a natural fragment of all-W or all-C,
        # so long homogeneous runs must appear.
        from repro.constants import AA_TO_INDEX

        w_idx, c_idx = AA_TO_INDEX["W"], AA_TO_INDEX["C"]
        planted = sum(
            1
            for m in pop
            if (m.encoded == w_idx).sum() >= 15 or (m.encoded == c_idx).sum() >= 15
        )
        assert planted == 20

    def test_fragment_shorter_than_source(self, rng):
        init = ProteinFragmentInitializer(
            [Protein("S", "WWW")], fragment_fraction=1.0
        )
        pop = init.population(3, 50, rng)
        assert all(len(m) == 50 for m in pop)

    def test_validation(self, proteins):
        with pytest.raises(ValueError):
            ProteinFragmentInitializer([])
        with pytest.raises(ValueError):
            ProteinFragmentInitializer(proteins, fragment_fraction=0.0)

    def test_biased_start_scores_differently(self, tiny_world, tiny_provider):
        """Seeding from natural proteins biases generation 0 towards
        database-similar sequences — measurably different mean PIPE
        evidence than the unbiased random start (the bias the paper's
        recommendation avoids)."""
        from repro.ga.fitness import FitnessFunction

        fn = FitnessFunction(tiny_provider)
        rng = np.random.default_rng(0)
        random_pop = RandomInitializer().population(10, 40, rng)
        biased_pop = ProteinFragmentInitializer(
            tiny_world.proteins[:10], fragment_fraction=0.6
        ).population(10, 40, np.random.default_rng(0))
        fn.evaluate(random_pop.members)
        fn.evaluate(biased_pop.members)
        mean_random = np.mean([m.target_score for m in random_pop])
        mean_biased = np.mean([m.target_score for m in biased_pop])
        assert mean_biased != pytest.approx(mean_random, abs=1e-6)


class TestWarmStart:
    def test_elites_preserved(self, rng):
        elite = np.full(20, 7, dtype=np.uint8)
        pop = WarmStartInitializer([elite]).population(5, 20, rng)
        assert np.array_equal(pop[0].encoded, elite)
        assert len(pop) == 5

    def test_elite_truncated(self, rng):
        elite = np.full(50, 7, dtype=np.uint8)
        pop = WarmStartInitializer([elite]).population(3, 20, rng)
        assert len(pop[0]) == 20
        assert np.all(pop[0].encoded == 7)

    def test_elite_padded(self, rng):
        elite = np.full(5, 7, dtype=np.uint8)
        pop = WarmStartInitializer([elite]).population(3, 20, rng)
        assert np.all(pop[0].encoded[:5] == 7)
        assert len(pop[0]) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmStartInitializer([])

    def test_warm_start_accelerates(self):
        """Continuing from a previous best must not lose ground on the
        trivial landscape."""
        cold = InSiPSEngine(
            _Provider(), GAParams(), population_size=10, candidate_length=20, seed=1
        )
        first = cold.run(5)
        warm = InSiPSEngine(
            _Provider(),
            GAParams(),
            population_size=10,
            candidate_length=20,
            seed=2,
            initializer=WarmStartInitializer([first.best.encoded]),
        )
        second = warm.run(5)
        assert second.best_fitness >= first.best_fitness - 1e-12


class TestEngineIntegration:
    def test_size_mismatch_detected(self):
        class Bad(RandomInitializer):
            def population(self, size, length, rng):
                return super().population(size - 1, length, rng)

        engine = InSiPSEngine(
            _Provider(),
            GAParams(),
            population_size=6,
            candidate_length=15,
            initializer=Bad(),
        )
        with pytest.raises(ValueError, match="initializer produced"):
            engine.initial_population()
