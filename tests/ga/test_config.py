"""Tests for GA parameters."""

import numpy as np
import pytest

from repro.ga.config import GAParams, PAPER_PARAMETER_SETS, WETLAB_PARAMS


def test_defaults_are_wetlab_values():
    p = GAParams()
    assert p.p_copy == 0.1
    assert p.p_mutate == 0.4
    assert p.p_crossover == 0.5
    assert p.p_mutate_aa == 0.05


def test_simplex_enforced():
    with pytest.raises(ValueError, match="sum to 1"):
        GAParams(p_copy=0.5, p_mutate=0.5, p_crossover=0.5)


def test_negative_rejected():
    with pytest.raises(ValueError):
        GAParams(p_copy=-0.1, p_mutate=0.6, p_crossover=0.5)


def test_mutate_aa_bounds():
    with pytest.raises(ValueError):
        GAParams(p_mutate_aa=1.5)


def test_crossover_margin_bounds():
    with pytest.raises(ValueError):
        GAParams(crossover_margin=0.5)
    GAParams(crossover_margin=0.0)


def test_operation_probabilities_order():
    p = GAParams(p_copy=0.2, p_mutate=0.3, p_crossover=0.5)
    assert p.operation_probabilities == (0.2, 0.3, 0.5)


def test_paper_sets_match_section_4_1():
    assert len(PAPER_PARAMETER_SETS) == 5
    expected = {
        "Set 1": (0.45, 0.45),
        "Set 2": (0.30, 0.60),
        "Set 3": (0.60, 0.30),
        "Set 4": (0.75, 0.15),
        "Set 5": (0.15, 0.75),
    }
    for name, (pc, pm) in expected.items():
        params = PAPER_PARAMETER_SETS[name]
        assert params.p_crossover == pytest.approx(pc)
        assert params.p_mutate == pytest.approx(pm)
        assert params.p_copy == pytest.approx(0.10)
        assert params.p_mutate_aa == pytest.approx(0.05)


def test_wetlab_params_match_section_4_2():
    assert WETLAB_PARAMS.p_crossover == 0.5
    assert WETLAB_PARAMS.p_mutate == 0.4
    assert WETLAB_PARAMS.p_copy == 0.1
    assert WETLAB_PARAMS.p_mutate_aa == 0.05


def test_frozen():
    with pytest.raises(AttributeError):
        GAParams().p_copy = 0.5


def test_all_paper_sets_sum_to_one():
    for params in PAPER_PARAMETER_SETS.values():
        assert np.isclose(sum(params.operation_probabilities), 1.0)
