"""Tests for Individual and Population."""

import numpy as np
import pytest

from repro.ga.population import Individual, Population


def _ind(seq, fitness=None):
    ind = Individual(np.array(seq, dtype=np.uint8))
    if fitness is not None:
        ind.fitness = fitness
        ind.target_score = fitness
        ind.max_non_target = 0.0
        ind.avg_non_target = 0.0
    return ind


class TestIndividual:
    def test_sequence_copied_and_frozen(self):
        src = np.array([1, 2, 3], dtype=np.uint8)
        ind = Individual(src)
        src[0] = 9
        assert ind.encoded[0] == 1
        with pytest.raises(ValueError):
            ind.encoded[0] = 5

    def test_key_identity(self):
        a = _ind([1, 2, 3])
        b = _ind([1, 2, 3])
        c = _ind([1, 2, 4])
        assert a.key == b.key
        assert a.key != c.key

    def test_sequence_string(self):
        assert _ind([0, 1]).sequence == "AR"

    def test_len(self):
        assert len(_ind([0, 1, 2, 3])) == 4

    def test_evaluated_flag(self):
        ind = _ind([1])
        assert not ind.evaluated
        ind.fitness = 0.5
        assert ind.evaluated

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Individual(np.array([], dtype=np.uint8))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            Individual(np.zeros((2, 2), dtype=np.uint8))


class TestPopulation:
    def test_append_and_iter(self):
        pop = Population()
        pop.append(_ind([1]))
        pop.append(_ind([2]))
        assert len(pop) == 2
        assert [len(m) for m in pop] == [1, 1]
        assert pop[1].encoded[0] == 2

    def test_fitness_array_requires_evaluation(self):
        pop = Population([_ind([1])])
        with pytest.raises(ValueError, match="unevaluated"):
            pop.fitness_array()

    def test_best_and_mean(self):
        pop = Population([_ind([1], 0.2), _ind([2], 0.8), _ind([3], 0.5)])
        assert pop.best().encoded[0] == 2
        assert pop.mean_fitness() == pytest.approx(0.5)

    def test_best_tie_breaks_earliest(self):
        pop = Population([_ind([1], 0.8), _ind([2], 0.8)])
        assert pop.best().encoded[0] == 1

    def test_unevaluated_members(self):
        evaluated = _ind([1], 0.5)
        fresh = _ind([2])
        pop = Population([evaluated, fresh])
        assert pop.unevaluated_members() == [fresh]
        assert not pop.evaluated

    def test_empty_population_not_evaluated(self):
        assert not Population().evaluated
