"""Tests for population diversity metrics."""

import numpy as np
import pytest

from repro.ga.diversity import (
    diversity_report,
    mean_pairwise_hamming,
    positional_entropy,
    unique_fraction,
)
from repro.ga.population import Individual, Population


def _pop(rows):
    return Population([Individual(np.array(r, dtype=np.uint8)) for r in rows])


class TestUniqueFraction:
    def test_all_unique(self):
        pop = _pop([[0, 1], [1, 2], [2, 3]])
        assert unique_fraction(pop) == 1.0

    def test_duplicates(self):
        pop = _pop([[0, 1], [0, 1], [2, 3], [2, 3]])
        assert unique_fraction(pop) == 0.5


class TestHamming:
    def test_identical_population(self):
        pop = _pop([[1, 2, 3]] * 4)
        assert mean_pairwise_hamming(pop) == 0.0

    def test_maximally_different(self):
        pop = _pop([[0, 0, 0], [1, 1, 1]])
        assert mean_pairwise_hamming(pop) == 1.0
        assert mean_pairwise_hamming(pop, normalised=False) == 3.0

    def test_exact_small_case(self):
        pop = _pop([[0, 0], [0, 1], [1, 1]])
        # Pairs: d=1, d=2, d=1 → mean 4/3 over length 2.
        assert mean_pairwise_hamming(pop, normalised=False) == pytest.approx(4 / 3)

    def test_single_member(self):
        assert mean_pairwise_hamming(_pop([[1, 2]])) == 0.0

    def test_subsampling_close_to_exact(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 20, size=(120, 30))
        pop = _pop(rows.tolist())
        exact = mean_pairwise_hamming(pop, max_pairs=10**9)
        sampled = mean_pairwise_hamming(pop, max_pairs=1500, seed=1)
        assert sampled == pytest.approx(exact, abs=0.05)

    def test_unequal_lengths_rejected(self):
        pop = _pop([[0, 1], [0, 1, 2]])
        with pytest.raises(ValueError, match="equal-length"):
            mean_pairwise_hamming(pop)


class TestEntropy:
    def test_fixed_positions_zero(self):
        pop = _pop([[5, 0], [5, 1], [5, 2], [5, 3]])
        entropy = positional_entropy(pop)
        assert entropy[0] == 0.0
        assert entropy[1] == pytest.approx(2.0)  # 4 equiprobable residues

    def test_bounds(self):
        rng = np.random.default_rng(1)
        pop = _pop(rng.integers(0, 20, size=(50, 10)).tolist())
        entropy = positional_entropy(pop)
        assert np.all(entropy >= 0)
        assert np.all(entropy <= np.log2(20) + 1e-9)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            positional_entropy(Population())


class TestReport:
    def test_keys_and_ranges(self):
        rng = np.random.default_rng(2)
        pop = _pop(rng.integers(0, 20, size=(20, 15)).tolist())
        report = diversity_report(pop)
        assert set(report) == {
            "unique_fraction",
            "mean_pairwise_hamming",
            "mean_positional_entropy",
            "min_positional_entropy",
            "converged_positions",
        }
        assert 0 <= report["unique_fraction"] <= 1
        assert 0 <= report["mean_pairwise_hamming"] <= 1
        assert report["converged_positions"] == 0  # random population

    def test_converged_population_detected(self):
        pop = _pop([[7, 7, 7]] * 10)
        report = diversity_report(pop)
        assert report["converged_positions"] == 3
        assert report["mean_pairwise_hamming"] == 0.0


class TestGADiversityDynamics:
    def test_selection_reduces_diversity(self, tiny_provider):
        """A few generations of selection must reduce population diversity
        relative to the random start (the GA is converging)."""
        from repro.ga.config import GAParams
        from repro.ga.engine import InSiPSEngine

        engine = InSiPSEngine(
            tiny_provider,
            GAParams(p_copy=0.5, p_mutate=0.3, p_crossover=0.2),
            population_size=16,
            candidate_length=24,
            seed=5,
        )
        pop = engine.initial_population()
        engine.evaluate_population(pop)
        initial = mean_pairwise_hamming(pop)
        for _ in range(6):
            pop = engine.next_generation(pop)
            engine.evaluate_population(pop)
        final = mean_pairwise_hamming(pop)
        assert final < initial
