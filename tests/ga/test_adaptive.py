"""Tests for adaptive operator control."""

import numpy as np
import pytest

from repro.ga.adaptive import AdaptiveInSiPSEngine, AdaptiveOperatorController
from repro.ga.config import GAParams
from repro.ga.fitness import ScoreProvider, ScoreSet


class TrivialProvider(ScoreProvider):
    def scores(self, sequences):
        return [
            ScoreSet(float((np.asarray(s) == 0).mean()), (0.1,))
            for s in sequences
        ]


class TestController:
    def test_probabilities_remain_valid(self):
        ctrl = AdaptiveOperatorController(GAParams())
        for improved in (10, 0, 5):
            params = ctrl.observe(
                {"mutate": (improved, 10), "crossover": (10 - improved, 10)}
            )
            total = params.p_copy + params.p_mutate + params.p_crossover
            assert total == pytest.approx(1.0)
            assert params.p_copy == GAParams().p_copy  # copy share fixed

    def test_successful_operator_gains_share(self):
        ctrl = AdaptiveOperatorController(GAParams())
        for _ in range(10):
            params = ctrl.observe({"mutate": (9, 10), "crossover": (0, 10)})
        assert params.p_mutate > params.p_crossover

    def test_min_share_floor(self):
        ctrl = AdaptiveOperatorController(GAParams(), min_share=0.2)
        for _ in range(30):
            params = ctrl.observe({"mutate": (10, 10), "crossover": (0, 10)})
        adaptive_mass = 1.0 - GAParams().p_copy
        assert params.p_crossover >= 0.2 * adaptive_mass / (0.2 + 0.8) - 1e-9
        assert params.p_crossover > 0.1

    def test_no_observations_keeps_params(self):
        ctrl = AdaptiveOperatorController(GAParams())
        before = ctrl.params
        after = ctrl.observe({"mutate": (0, 0), "crossover": (0, 0)})
        assert after.p_mutate == pytest.approx(before.p_mutate, abs=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveOperatorController(GAParams(), smoothing=0.0)
        with pytest.raises(ValueError):
            AdaptiveOperatorController(GAParams(), floor=0.0)
        with pytest.raises(ValueError):
            AdaptiveOperatorController(GAParams(), min_share=0.6)


class TestAdaptiveEngine:
    def _engine(self, seed=3):
        return AdaptiveInSiPSEngine(
            TrivialProvider(),
            GAParams(),
            population_size=16,
            candidate_length=24,
            seed=seed,
        )

    def test_runs_and_improves(self):
        result = self._engine().run(12)
        assert result.best_fitness > result.history.stats[0].best_fitness

    def test_params_adapt_over_time(self):
        engine = self._engine()
        engine.run(10)
        assert len(engine.params_history) > 1
        mutate_shares = [p.p_mutate for p in engine.params_history]
        assert len(set(round(m, 6) for m in mutate_shares)) > 1

    def test_probabilities_always_simplex(self):
        engine = self._engine()
        engine.run(8)
        for p in engine.params_history:
            assert p.p_copy + p.p_mutate + p.p_crossover == pytest.approx(1.0)
            assert p.p_mutate > 0 and p.p_crossover > 0

    def test_population_size_invariant(self):
        engine = self._engine()
        pop = engine.initial_population()
        engine.evaluate_population(pop)
        nxt = engine.next_generation(pop)
        assert len(nxt) == 16

    def test_deterministic_given_seed(self):
        a = self._engine(seed=9).run(6)
        b = self._engine(seed=9).run(6)
        assert a.best_fitness == b.best_fitness

    def test_competitive_with_static(self):
        """Adaptation must not hurt on the trivial landscape."""
        from repro.ga.engine import InSiPSEngine

        static = InSiPSEngine(
            TrivialProvider(),
            GAParams(),
            population_size=16,
            candidate_length=24,
            seed=11,
        ).run(15)
        adaptive = AdaptiveInSiPSEngine(
            TrivialProvider(),
            GAParams(),
            population_size=16,
            candidate_length=24,
            seed=11,
        ).run(15)
        assert adaptive.best_fitness >= 0.5 * static.best_fitness
