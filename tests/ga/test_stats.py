"""Tests for generation statistics and run histories."""

import numpy as np
import pytest

from repro.ga.population import Individual, Population
from repro.ga.stats import GenerationStats, RunHistory


def _stats(gen, best, mean=None):
    return GenerationStats(
        generation=gen,
        best_fitness=best,
        mean_fitness=mean if mean is not None else best / 2,
        best_target_score=best,
        best_max_non_target=0.1,
        best_avg_non_target=0.05,
        evaluations=5,
    )


def test_from_population():
    a = Individual(np.array([1], dtype=np.uint8))
    a.fitness, a.target_score, a.max_non_target, a.avg_non_target = 0.3, 0.5, 0.2, 0.1
    b = Individual(np.array([2], dtype=np.uint8))
    b.fitness, b.target_score, b.max_non_target, b.avg_non_target = 0.6, 0.8, 0.25, 0.12
    pop = Population([a, b], generation=4)
    s = GenerationStats.from_population(pop, evaluations=2)
    assert s.generation == 4
    assert s.best_fitness == 0.6
    assert s.best_target_score == 0.8
    assert s.best_max_non_target == 0.25
    assert s.mean_fitness == pytest.approx(0.45)
    assert s.evaluations == 2


class TestRunHistory:
    def test_append_enforces_order(self):
        h = RunHistory()
        h.append(_stats(0, 0.1))
        h.append(_stats(1, 0.2))
        with pytest.raises(ValueError):
            h.append(_stats(1, 0.3))

    def test_running_best_monotone(self):
        h = RunHistory()
        for g, f in enumerate([0.1, 0.5, 0.3, 0.6, 0.2]):
            h.append(_stats(g, f))
        rb = h.running_best()
        assert list(rb) == [0.1, 0.5, 0.5, 0.6, 0.6]
        assert h.final_best_fitness == 0.6

    def test_generations_since_improvement(self):
        h = RunHistory()
        for g, f in enumerate([0.1, 0.5, 0.3, 0.4]):
            h.append(_stats(g, f))
        assert h.generations_since_improvement() == 2

    def test_no_improvement_from_start(self):
        h = RunHistory()
        for g in range(4):
            h.append(_stats(g, 0.2))
        assert h.generations_since_improvement() == 3

    def test_learning_curves_keys_and_lengths(self):
        h = RunHistory()
        for g in range(5):
            h.append(_stats(g, 0.1 * g))
        curves = h.learning_curves()
        assert set(curves) == {
            "generation",
            "target",
            "max_non_target",
            "avg_non_target",
            "best_fitness",
        }
        for v in curves.values():
            assert len(v) == 5

    def test_empty_history_errors(self):
        with pytest.raises(ValueError):
            RunHistory().final_best_fitness

    def test_iteration(self):
        h = RunHistory()
        h.append(_stats(0, 0.1))
        assert len(list(h)) == 1
