"""Tests for termination criteria."""

import pytest

from repro.ga.stats import GenerationStats, RunHistory
from repro.ga.termination import (
    MaxGenerations,
    PaperTermination,
    StallGenerations,
)


def _history(best_curve):
    h = RunHistory()
    for g, f in enumerate(best_curve):
        h.append(
            GenerationStats(
                generation=g,
                best_fitness=f,
                mean_fitness=f / 2,
                best_target_score=f,
                best_max_non_target=0.0,
                best_avg_non_target=0.0,
                evaluations=10,
            )
        )
    return h


class TestMaxGenerations:
    def test_stops_exactly_at_limit(self):
        crit = MaxGenerations(3)
        assert not crit.should_stop(_history([0.1, 0.2]))
        assert crit.should_stop(_history([0.1, 0.2, 0.3]))

    def test_validation(self):
        with pytest.raises(ValueError):
            MaxGenerations(0)


class TestStallGenerations:
    def test_detects_stall(self):
        crit = StallGenerations(stall=2)
        assert not crit.should_stop(_history([0.1, 0.2, 0.2]))
        assert crit.should_stop(_history([0.1, 0.2, 0.2, 0.2]))

    def test_improvement_resets(self):
        crit = StallGenerations(stall=2)
        assert not crit.should_stop(_history([0.1, 0.1, 0.1, 0.5]))

    def test_min_improvement(self):
        crit = StallGenerations(stall=2, min_improvement=0.1)
        # Tiny improvements do not count as progress.
        assert crit.should_stop(_history([0.1, 0.101, 0.102]))

    def test_validation(self):
        with pytest.raises(ValueError):
            StallGenerations(stall=0)
        with pytest.raises(ValueError):
            StallGenerations(stall=2, min_improvement=-0.1)


class TestPaperTermination:
    def test_never_stops_before_min_generations(self):
        crit = PaperTermination(min_generations=10, stall=2, hard_limit=100)
        flat = _history([0.1] * 9)
        assert not crit.should_stop(flat)

    def test_stops_after_min_plus_stall(self):
        crit = PaperTermination(min_generations=5, stall=3, hard_limit=100)
        # 8 generations, last 3 without improvement, min reached.
        h = _history([0.1, 0.2, 0.3, 0.4, 0.5, 0.5, 0.5, 0.5])
        assert crit.should_stop(h)

    def test_keeps_running_while_improving(self):
        crit = PaperTermination(min_generations=3, stall=3, hard_limit=100)
        h = _history([0.1 * (i + 1) for i in range(20)])
        assert not crit.should_stop(h)

    def test_hard_limit(self):
        crit = PaperTermination(min_generations=2, stall=100, hard_limit=5)
        h = _history([0.1 * (i + 1) for i in range(5)])
        assert crit.should_stop(h)

    def test_paper_defaults(self):
        crit = PaperTermination()
        assert crit.min_generations == 250
        assert crit.stall == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            PaperTermination(min_generations=0)
        with pytest.raises(ValueError):
            PaperTermination(min_generations=10, hard_limit=5)
