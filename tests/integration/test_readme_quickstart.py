"""The README quickstart snippet must actually run as documented."""


def test_readme_quickstart_snippet():
    from repro import InhibitorDesigner, get_profile

    designer = InhibitorDesigner.from_profile(get_profile("tiny"), seed=0)
    result = designer.design("YBL051C", seed=1, termination=3)

    assert 0.0 <= result.fitness <= 1.0
    profile = result.inhibition_profile()
    assert profile.target == "YBL051C"
    protein = result.designed_protein()
    assert protein.name == "anti-YBL051C"
    assert len(protein.sequence) == get_profile("tiny").candidate_length


def test_readme_telemetry_snippet(tmp_path):
    from repro import InhibitorDesigner, get_profile
    from repro.telemetry import MetricsRegistry, export_jsonl, summary

    telemetry = MetricsRegistry()
    designer = InhibitorDesigner.from_profile(
        get_profile("tiny"), seed=0, telemetry=telemetry
    )
    designer.design("YBL051C", seed=1, termination=3)
    report = summary(telemetry)
    assert "pipe.triple_product" in report
    assert export_jsonl(telemetry, tmp_path / "run.jsonl") > 0


def test_top_level_exports_importable():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_subpackage_all_exports_resolve():
    import importlib

    for module_name in (
        "repro.sequences",
        "repro.substitution",
        "repro.ppi",
        "repro.ga",
        "repro.parallel",
        "repro.cluster",
        "repro.wetlab",
        "repro.analysis",
        "repro.synthetic",
        "repro.experiments",
        "repro.telemetry",
    ):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{module_name}.{name}"
