"""Tests for the top-level CLI (python -m repro)."""

import pytest

from repro.__main__ import main


def test_profiles_command(capsys):
    assert main(["profiles"]) == 0
    out = capsys.readouterr().out
    for name in ("tiny", "small", "medium", "paper"):
        assert name in out
    assert "6707" in out  # the paper scale is surfaced


def test_evaluate_command(capsys):
    assert main(["evaluate", "--pairs", "10"]) == 0
    out = capsys.readouterr().out
    assert "ROC AUC" in out
    assert "FPR" in out


def test_design_command(capsys, tmp_path):
    out_file = tmp_path / "design.json"
    assert (
        main(
            [
                "design",
                "YBL051C",
                "--generations",
                "2",
                "--scan",
                "3",
                "--out",
                str(out_file),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "anti-YBL051C" in out
    assert "Specificity scan" in out
    assert out_file.exists()

    from repro.io import load_design_result

    saved = load_design_result(out_file)
    assert saved.target == "YBL051C"


def test_design_with_telemetry(capsys, tmp_path):
    metrics_file = tmp_path / "metrics.jsonl"
    assert (
        main(
            [
                "design",
                "YBL051C",
                "--generations",
                "2",
                "--telemetry",
                str(metrics_file),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "telemetry:" in out
    assert "pipe.triple_product" in out
    assert metrics_file.exists()

    from repro.telemetry import read_jsonl

    records = read_jsonl(metrics_file)
    assert any(r.get("event") == "ga.generation" for r in records)


def test_stats_command(capsys, tmp_path):
    out_file = tmp_path / "stats.jsonl"
    assert (
        main(["stats", "--generations", "2", "--out", str(out_file)]) == 0
    )
    out = capsys.readouterr().out
    assert "instrumented design" in out
    assert "ga.evaluate" in out
    assert "provider.cache" in out
    assert out_file.exists()


def test_stats_command_csv(capsys, tmp_path):
    out_file = tmp_path / "stats.csv"
    assert (
        main(
            [
                "stats",
                "--generations",
                "2",
                "--format",
                "csv",
                "--out",
                str(out_file),
            ]
        )
        == 0
    )
    assert "CSV rows" in capsys.readouterr().out
    assert out_file.exists()


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_no_command_rejected():
    with pytest.raises(SystemExit):
        main([])
