"""Tests for the top-level CLI (python -m repro)."""

import pytest

from repro.__main__ import main


def test_profiles_command(capsys):
    assert main(["profiles"]) == 0
    out = capsys.readouterr().out
    for name in ("tiny", "small", "medium", "paper"):
        assert name in out
    assert "6707" in out  # the paper scale is surfaced


def test_evaluate_command(capsys):
    assert main(["evaluate", "--pairs", "10"]) == 0
    out = capsys.readouterr().out
    assert "ROC AUC" in out
    assert "FPR" in out


def test_design_command(capsys, tmp_path):
    out_file = tmp_path / "design.json"
    assert (
        main(
            [
                "design",
                "YBL051C",
                "--generations",
                "2",
                "--scan",
                "3",
                "--out",
                str(out_file),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "anti-YBL051C" in out
    assert "Specificity scan" in out
    assert out_file.exists()

    from repro.io import load_design_result

    saved = load_design_result(out_file)
    assert saved.target == "YBL051C"


def test_design_with_telemetry(capsys, tmp_path):
    metrics_file = tmp_path / "metrics.jsonl"
    assert (
        main(
            [
                "design",
                "YBL051C",
                "--generations",
                "2",
                "--telemetry",
                str(metrics_file),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "telemetry:" in out
    assert "pipe.triple_product" in out
    assert metrics_file.exists()

    from repro.telemetry import read_jsonl

    records = read_jsonl(metrics_file)
    assert any(r.get("event") == "ga.generation" for r in records)


def test_stats_command(capsys, tmp_path):
    out_file = tmp_path / "stats.jsonl"
    assert (
        main(["stats", "--generations", "2", "--out", str(out_file)]) == 0
    )
    out = capsys.readouterr().out
    assert "instrumented design" in out
    assert "ga.evaluate" in out
    assert "provider.cache" in out
    assert out_file.exists()


def test_stats_command_csv(capsys, tmp_path):
    out_file = tmp_path / "stats.csv"
    assert (
        main(
            [
                "stats",
                "--generations",
                "2",
                "--format",
                "csv",
                "--out",
                str(out_file),
            ]
        )
        == 0
    )
    assert "CSV rows" in capsys.readouterr().out
    assert out_file.exists()


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_no_command_rejected():
    with pytest.raises(SystemExit):
        main([])


@pytest.mark.parametrize(
    "argv, flag",
    [
        (["design", "YBL051C", "--backend", "thread", "--workers", "2",
          "--scaling", "queue-depth"], "--scaling"),
        (["design", "YBL051C", "--fail-fast"], "--fail-fast"),
        (["design", "YBL051C", "--backend", "fabric", "--no-shm"], "--no-shm"),
        (["stats", "--backend", "thread", "--workers", "2",
          "--min-workers", "1"], "--min-workers"),
    ],
)
def test_process_only_flags_rejected_for_other_backends(capsys, argv, flag):
    # Regression: these flags were silently dropped for non-process
    # backends; now they are named with exit code 2.
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert flag in err
    assert "process" in err


def test_jobs_cli_round_trip(capsys, tmp_path):
    # submit -> serve (in-process, bounded) -> status/result/list: the
    # status and result schemas must round-trip through the CLI as JSON.
    import json

    root = tmp_path / "svc"
    assert (
        main(
            [
                "jobs", "submit", "--root", str(root), "YBL051C",
                "--tenant", "alice", "--generations", "2",
                "--population", "8", "--length", "20",
                "--job-id", "job-cli-1",
            ]
        )
        == 0
    )
    assert capsys.readouterr().out.strip() == "job-cli-1"

    assert (
        main(
            [
                "serve", "--root", str(root), "--workers", "1",
                "--max-concurrent", "1", "--poll-s", "0.05",
                "--idle-exit-s", "1",
            ]
        )
        == 0
    )
    assert "service stopped" in capsys.readouterr().out

    assert main(["jobs", "status", "--root", str(root), "job-cli-1"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["format"] == "repro-job-status"
    assert status["state"] == "DONE"
    assert status["tenant"] == "alice"
    assert status["generations_done"] == 2

    assert main(["jobs", "result", "--root", str(root), "job-cli-1"]) == 0
    result = json.loads(capsys.readouterr().out)
    assert result["format"] == "repro-job-result"
    assert result["job_id"] == "job-cli-1"
    assert len(result["sequence"]) == 20
    assert result["history_digest"]

    assert main(["jobs", "list", "--root", str(root)]) == 0
    listing = capsys.readouterr().out
    assert "job-cli-1" in listing and "DONE" in listing


def test_jobs_cli_errors(capsys, tmp_path):
    root = tmp_path / "svc"
    assert main(["jobs", "status", "--root", str(root), "job-nope"]) == 2
    assert "not found" in capsys.readouterr().err
    assert main(["jobs", "cancel", "--root", str(root), "job-nope"]) == 2
    assert "no such job" in capsys.readouterr().err
    assert (
        main(
            ["jobs", "submit", "--root", str(root), "YBL051C",
             "--generations", "0"]
        )
        == 2
    )
    assert "generations" in capsys.readouterr().err
    assert main(["jobs", "list", "--root", str(root)]) == 0
    assert "no jobs" in capsys.readouterr().out
