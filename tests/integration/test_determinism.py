"""End-to-end determinism: the paper's seeding contract (Sec. 4.1).

"When a random number generator is seeded with a given number, it will
always produce the same set of random numbers.  This way we can assure,
for instance, that two different runs of InSiPS have the same initial
population."  Every layer of this reproduction honours that contract.
"""

import numpy as np

from repro.core.designer import InhibitorDesigner
from repro.synthetic import get_profile


def _world(seed=5):
    return get_profile("tiny").build_world(seed=seed)


class TestWorldDeterminism:
    def test_identical_worlds_from_identical_seeds(self):
        a, b = _world(), _world()
        assert [p.sequence for p in a.proteins] == [p.sequence for p in b.proteins]
        assert a.graph.edges() == b.graph.edges()
        assert [p.annotations for p in a.proteins] == [
            p.annotations for p in b.proteins
        ]
        assert a.similarity_threshold == b.similarity_threshold

    def test_different_seeds_different_worlds(self):
        a, b = _world(5), _world(6)
        assert [p.sequence for p in a.proteins] != [p.sequence for p in b.proteins]


class TestDesignDeterminism:
    def test_same_seed_same_design(self):
        # Two *independently built* worlds and designers: the full chain
        # (world -> engine -> GA) must reproduce bit-identically.
        runs = []
        for _ in range(2):
            designer = InhibitorDesigner(
                _world(), population_size=10, candidate_length=24, non_target_limit=4
            )
            runs.append(designer.design("YBL051C", seed=11, termination=4))
        a, b = runs
        assert np.array_equal(a.best.encoded, b.best.encoded)
        assert a.fitness == b.fitness
        assert np.array_equal(
            a.history.best_fitness_curve(), b.history.best_fitness_curve()
        )

    def test_different_seeds_explore_differently(self):
        designer = InhibitorDesigner(
            _world(), population_size=10, candidate_length=24, non_target_limit=4
        )
        a = designer.design("YBL051C", seed=1, termination=3)
        b = designer.design("YBL051C", seed=2, termination=3)
        assert not np.array_equal(a.best.encoded, b.best.encoded)


class TestExperimentDeterminism:
    def test_des_experiments_repeatable(self):
        from repro.experiments.fig5_fig6_worker_scaling import run_fig5_fig6

        a = run_fig5_fig6(seed=3, sequences=120, process_counts=(64, 128))
        b = run_fig5_fig6(seed=3, sequences=120, process_counts=(64, 128))
        assert a.data["runtimes"] == b.data["runtimes"]

    def test_wetlab_assays_repeatable(self):
        from repro.wetlab.assays import STANDARD_ASSAYS
        from repro.wetlab.binding import InhibitionProfile
        from repro.wetlab.colony import run_colony_assay
        from repro.wetlab.strains import make_standard_strains

        strains = make_standard_strains(
            InhibitionProfile("T", 0.63, 0.40, 0.08)
        )
        a = run_colony_assay(strains, STANDARD_ASSAYS["ultraviolet"], seed=8)
        b = run_colony_assay(strains, STANDARD_ASSAYS["ultraviolet"], seed=8)
        assert np.array_equal(a.percentages, b.percentages)

    def test_synthesis_order_repeatable(self):
        designer = InhibitorDesigner(
            _world(), population_size=8, candidate_length=24, non_target_limit=4
        )
        design = designer.design("YBL051C", seed=4, termination=2)
        assert (
            design.synthesis_order(seed=3)["coding_dna"]
            == design.synthesis_order(seed=3)["coding_dna"]
        )
