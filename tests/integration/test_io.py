"""Tests for interactome and design persistence."""

import json

import numpy as np
import pytest

from repro.io import (
    load_design_result,
    load_interactome,
    save_design_result,
    save_interactome,
)
from repro.ppi.graph import InteractionGraph
from repro.sequences.protein import Protein


@pytest.fixture()
def graph():
    proteins = [
        Protein("P1", "MKTLLV", {"component": "cytoplasm", "abundance": 4200}),
        Protein("P2", "ACDEFG", {"motifs": ["lock:0"]}),
        Protein("P3", "WYHRKK"),
    ]
    return InteractionGraph(proteins, [("P1", "P2"), ("P2", "P3")])


class TestInteractomeRoundtrip:
    def test_roundtrip(self, graph, tmp_path):
        path = tmp_path / "world.json"
        save_interactome(graph, path)
        back = load_interactome(path)
        assert back.names == graph.names
        assert back.edges() == graph.edges()
        assert back.protein("P1").annotations == graph.protein("P1").annotations
        assert back.protein("P2").sequence == "ACDEFG"

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a repro interactome"):
            load_interactome(path)

    def test_rejects_future_version(self, graph, tmp_path):
        path = tmp_path / "world.json"
        save_interactome(graph, path)
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_interactome(path)

    def test_loaded_world_drives_pipe(self, graph, tmp_path):
        from repro.ppi.pipe import PipeConfig, PipeEngine

        path = tmp_path / "world.json"
        save_interactome(graph, path)
        engine = PipeEngine.build(
            load_interactome(path),
            PipeConfig(window_size=3, similarity_threshold=15.0),
        )
        score = engine.score(np.array([0, 1, 2, 3], dtype=np.uint8), "P1")
        assert 0.0 <= score < 1.0


class TestDesignRoundtrip:
    @pytest.fixture()
    def design(self, tiny_world):
        from repro.core.designer import InhibitorDesigner

        designer = InhibitorDesigner(
            tiny_world, population_size=8, candidate_length=24, non_target_limit=4
        )
        return designer.design("YBL051C", seed=2, termination=3)

    def test_roundtrip(self, design, tmp_path):
        path = tmp_path / "design.json"
        save_design_result(design, path)
        back = load_design_result(path)
        assert back.target == design.target
        assert back.non_targets == design.non_targets
        assert back.best.sequence == design.best.sequence
        assert back.best.fitness == pytest.approx(design.fitness)
        assert back.generations == design.generations
        assert len(back.history) == len(design.history)
        assert back.history.final_best_fitness == pytest.approx(
            design.history.final_best_fitness
        )
        assert back.seed == design.seed

    def test_profile_survives(self, design, tmp_path):
        path = tmp_path / "design.json"
        save_design_result(design, path)
        back = load_design_result(path)
        original = design.inhibition_profile()
        restored = back.inhibition_profile()
        assert restored.target_score == pytest.approx(original.target_score)
        assert restored.max_off_target_score == pytest.approx(
            original.max_off_target_score
        )

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ValueError, match="not a repro design"):
            load_design_result(path)
