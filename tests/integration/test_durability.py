"""Durability regressions: a failed save must never damage the old file.

Every writer routes through :func:`repro.util.atomic.atomic_write`, whose
contract is serialize-then-swap — so a mid-serialization failure (an
unserializable field) or a crash mid-write leaves any previously saved
file byte-identical and loadable.
"""

import numpy as np
import pytest

from repro.core.designer import DesignResult
from repro.ga.population import Individual
from repro.ga.stats import GenerationStats, RunHistory
from repro.io import (
    load_design_result,
    load_interactome,
    save_design_result,
    save_interactome,
)
from repro.ppi.graph import InteractionGraph
from repro.sequences.protein import Protein
from repro.telemetry import MetricsRegistry
from repro.telemetry.exporters import export_jsonl, read_jsonl


def _graph(annotations=None):
    proteins = [
        Protein("P1", "MKTLLV", annotations or {"component": "cytoplasm"}),
        Protein("P2", "ACDEFG"),
    ]
    return InteractionGraph(proteins, [("P1", "P2")])


def _result(fitness=0.75):
    best = Individual(np.zeros(6, dtype=np.uint8))
    best.fitness = fitness
    best.target_score = 0.8
    best.max_non_target = 0.1
    best.avg_non_target = 0.05
    history = RunHistory()
    history.append(
        GenerationStats(
            generation=0,
            best_fitness=0.75,
            mean_fitness=0.5,
            best_target_score=0.8,
            best_max_non_target=0.1,
            best_avg_non_target=0.05,
            evaluations=6,
        )
    )
    return DesignResult(
        target="T",
        non_targets=["N1"],
        best=best,
        history=history,
        generations=1,
        evaluations=6,
        seed=3,
    )


class TestDesignResultDurability:
    def test_failed_save_leaves_old_file_intact(self, tmp_path):
        path = tmp_path / "design.json"
        save_design_result(_result(), path)
        before = path.read_bytes()

        # fitness=object() cannot be serialized: the save must fail
        # *before* touching the existing file.
        with pytest.raises(TypeError):
            save_design_result(_result(fitness=object()), path)

        assert path.read_bytes() == before
        assert load_design_result(path).best.fitness == 0.75
        assert [p.name for p in tmp_path.iterdir()] == ["design.json"]


class TestInteractomeDurability:
    def test_failed_save_leaves_old_file_intact(self, tmp_path):
        path = tmp_path / "world.json"
        save_interactome(_graph(), path)
        before = path.read_bytes()

        with pytest.raises(TypeError):
            save_interactome(_graph(annotations={"bad": object()}), path)

        assert path.read_bytes() == before
        assert load_interactome(path).names == ["P1", "P2"]
        assert [p.name for p in tmp_path.iterdir()] == ["world.json"]


class TestTelemetryExportDurability:
    def test_failed_export_leaves_old_trace_intact(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = MetricsRegistry()
        good.count("runs", 1)
        export_jsonl(good, path)
        before = path.read_bytes()

        bad = MetricsRegistry()
        bad.event("oops", payload=object())
        with pytest.raises(TypeError):
            export_jsonl(bad, path)

        assert path.read_bytes() == before
        records = read_jsonl(path)
        assert any(r.get("name") == "runs" for r in records)
        assert [p.name for p in tmp_path.iterdir()] == ["trace.jsonl"]
