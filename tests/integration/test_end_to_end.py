"""End-to-end integration: world → design → wet-lab validation."""

import numpy as np
import pytest

from repro.core.designer import InhibitorDesigner
from repro.ga.termination import PaperTermination
from repro.wetlab.assays import STANDARD_ASSAYS
from repro.wetlab.colony import run_colony_assay
from repro.wetlab.strains import make_standard_strains


@pytest.fixture(scope="module")
def designer(tiny_world):
    return InhibitorDesigner(
        tiny_world,
        population_size=24,
        candidate_length=48,
        non_target_limit=8,
    )


@pytest.fixture(scope="module")
def design(designer):
    return designer.design(
        "YBL051C",
        seed=42,
        termination=PaperTermination(min_generations=15, stall=6, hard_limit=40),
    )


class TestDesign:
    def test_design_improves_over_random(self, design):
        curve = design.history.best_fitness_curve()
        assert design.fitness >= curve[0]
        assert design.fitness > 0.1

    def test_design_statistics_consistent(self, design):
        best = design.best
        assert best.fitness == pytest.approx(
            (1 - best.max_non_target) * best.target_score
        )
        assert best.avg_non_target <= best.max_non_target

    def test_design_separates_target_from_background(self, design):
        # The point of the fitness function: the designed protein scores
        # higher against the target than the *average* non-target.
        assert design.best.target_score > design.best.avg_non_target

    def test_designed_protein_record(self, design):
        protein = design.designed_protein()
        assert protein.name == "anti-YBL051C"
        assert protein.annotations["designed"] is True
        assert len(protein) == 48

    def test_history_matches_generations(self, design):
        assert len(design.history) == design.generations
        assert design.generations >= 15

    def test_design_scores_verified_against_engine(self, design, tiny_world):
        """The reported best scores must be real PIPE scores, not GA
        bookkeeping artifacts."""
        engine = tiny_world.engine
        seq = design.best.encoded
        assert engine.score(seq, "YBL051C") == pytest.approx(
            design.best.target_score
        )
        nts = design.non_targets
        scores = [engine.score(seq, nt) for nt in nts]
        assert max(scores) == pytest.approx(design.best.max_non_target)
        assert float(np.mean(scores)) == pytest.approx(design.best.avg_non_target)


class TestDesignToWetlab:
    def test_full_pipeline(self, design):
        profile = design.inhibition_profile()
        strains = make_standard_strains(profile, knockout_label="ΔPIN4")
        assay = STANDARD_ASSAYS["cycloheximide"]
        result = run_colony_assay(strains, assay, runs=3, seed=1)
        wt, wt_plus, inhibitor, knockout = result.averages()
        assert knockout < wt  # knockout control behaves
        assert inhibitor <= wt + 3  # inhibition can only reduce survival


class TestDesignMany:
    def test_returns_best_of_seeds(self, designer):
        result = designer.design_many("YBL051C", [1, 2], termination=4)
        single1 = designer.design("YBL051C", seed=1, termination=4)
        single2 = designer.design("YBL051C", seed=2, termination=4)
        assert result.fitness == pytest.approx(
            max(single1.fitness, single2.fitness)
        )

    def test_empty_seed_list_rejected(self, designer):
        with pytest.raises(ValueError):
            designer.design_many("YBL051C", [])


class TestDesignerConfig:
    def test_from_profile(self, tiny_profile):
        designer = InhibitorDesigner.from_profile(tiny_profile, seed=1)
        assert designer.population_size == tiny_profile.population_size
        assert designer.candidate_length == tiny_profile.candidate_length

    def test_from_profile_overrides(self, tiny_profile):
        designer = InhibitorDesigner.from_profile(
            tiny_profile, seed=1, population_size=10
        )
        assert designer.population_size == 10

    def test_explicit_non_targets(self, designer, tiny_world):
        nts = tiny_world.non_targets_for("YBL051C", limit=3)
        result = designer.design(
            "YBL051C", seed=1, termination=2, non_targets=nts
        )
        assert result.non_targets == nts
