"""Tests for the design → synthesis-order handoff."""

import pytest

from repro.core.designer import InhibitorDesigner
from repro.sequences.codon import translate


@pytest.fixture(scope="module")
def design(tiny_world):
    designer = InhibitorDesigner(
        tiny_world, population_size=8, candidate_length=24, non_target_limit=4
    )
    return designer.design("YBL051C", seed=3, termination=3)


def test_order_fields(design):
    order = design.synthesis_order()
    assert set(order) == {
        "name",
        "protein",
        "coding_dna",
        "gc_content",
        "molecular_weight_da",
        "net_charge",
        "gravy",
        "flags",
    }
    assert order["name"] == "anti-YBL051C"


def test_dna_encodes_the_design(design):
    order = design.synthesis_order()
    translated = translate(order["coding_dna"])
    protein = order["protein"]
    # ATG may have been prepended for expression.
    assert translated == protein or translated == "M" + protein


def test_reasonable_physical_values(design):
    order = design.synthesis_order()
    assert 0.2 < order["gc_content"] < 0.7
    assert order["molecular_weight_da"] > 24 * 57  # heavier than poly-Gly
    assert isinstance(order["flags"], list)


def test_seed_controls_codon_sampling(design):
    a = design.synthesis_order(seed=1)["coding_dna"]
    b = design.synthesis_order(seed=1)["coding_dna"]
    c = design.synthesis_order(seed=2)["coding_dna"]
    assert a == b
    assert a != c
    assert translate(a) == translate(c)
