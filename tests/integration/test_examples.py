"""Smoke tests for the example scripts.

Each example must compile, carry a module docstring, and expose ``--help``
without building a world (argparse exits before any heavy work).
"""

import ast
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses_with_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_help_exits_cleanly(path):
    proc = subprocess.run(
        [sys.executable, str(path), "--help"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "usage" in proc.stdout.lower()


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_uses_public_api_only(path):
    """Examples must demonstrate the public API: no private-module
    imports (``repro.x._y``) and no private attribute access on repro
    objects."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            assert not any(
                part.startswith("_") for part in node.module.split(".")
            ), f"{path.name} imports private module {node.module}"
