"""The key runtime property: the GA is *bit-identical* whether scores come
from the serial reference path or the multiprocessing master/worker
runtime (the paper's parallelisation changes performance, not results)."""

import numpy as np
import pytest

from repro.ga.config import WETLAB_PARAMS
from repro.ga.engine import InSiPSEngine
from repro.ga.fitness import SerialScoreProvider
from repro.parallel.mp_backend import MultiprocessScoreProvider


@pytest.mark.slow
def test_serial_and_parallel_runs_identical(tiny_engine, tiny_problem):
    target, non_targets = tiny_problem

    serial_provider = SerialScoreProvider(tiny_engine, target, non_targets)
    serial_engine = InSiPSEngine(
        serial_provider,
        WETLAB_PARAMS,
        population_size=10,
        candidate_length=30,
        seed=99,
    )
    serial_result = serial_engine.run(3)

    mp_provider = MultiprocessScoreProvider(
        tiny_engine, target, non_targets, num_workers=2, timeout=120.0
    )
    try:
        mp_engine = InSiPSEngine(
            mp_provider,
            WETLAB_PARAMS,
            population_size=10,
            candidate_length=30,
            seed=99,
        )
        mp_result = mp_engine.run(3)
    finally:
        mp_provider.close()

    assert np.array_equal(serial_result.best.encoded, mp_result.best.encoded)
    assert serial_result.best_fitness == pytest.approx(mp_result.best_fitness)
    assert np.allclose(
        serial_result.history.best_fitness_curve(),
        mp_result.history.best_fitness_curve(),
    )


def test_designer_with_parallel_provider_factory(tiny_world, tiny_problem):
    from repro.core.designer import InhibitorDesigner

    target, _ = tiny_problem

    created = []

    def factory(engine, target_name, non_targets):
        provider = MultiprocessScoreProvider(
            engine, target_name, non_targets, num_workers=1, timeout=120.0
        )
        created.append(provider)
        return provider

    designer = InhibitorDesigner(
        tiny_world,
        population_size=8,
        candidate_length=24,
        non_target_limit=4,
        provider_factory=factory,
    )
    result = designer.design(target, seed=5, termination=2)
    assert result.fitness >= 0.0
    assert created  # the factory was actually used
    assert not created[0]._workers  # closed by design()
