"""Tests for the multi-rack performance model."""

import pytest

from repro.cluster.multirack import (
    MultiRackConfig,
    simulate_multirack_generation,
)
from repro.cluster.workload import PopulationWorkloadModel


@pytest.fixture(scope="module")
def workloads():
    return PopulationWorkloadModel("m", 5100.0, 0.1).sample(1500, seed=0)


@pytest.fixture(scope="module")
def config():
    return MultiRackConfig(processes_per_rack=256)


class TestSyncTime:
    def test_single_rack_free(self, config):
        assert config.sync_time(1) == 0.0

    def test_logarithmic_rounds(self, config):
        per_round = config.sync_latency + config.sync_round_cost
        assert config.sync_time(2) == pytest.approx(per_round)
        assert config.sync_time(8) == pytest.approx(3 * per_round)
        assert config.sync_time(100) == pytest.approx(7 * per_round)

    def test_paper_claim_small_overhead(self, config, workloads):
        """Sec. 3: for < 100 racks the sync overhead 'would be small' —
        verify it is a negligible fraction of a generation."""
        result = simulate_multirack_generation(workloads, 4, config)
        assert result.sync_fraction < 0.001


class TestSimulation:
    def test_multi_rack_speeds_up_generation(self, workloads, config):
        t1 = simulate_multirack_generation(workloads, 1, config).total_time
        t4 = simulate_multirack_generation(workloads, 4, config).total_time
        t8 = simulate_multirack_generation(workloads, 8, config).total_time
        assert t1 > t4 > t8

    def test_rack_times_reported(self, workloads, config):
        result = simulate_multirack_generation(workloads, 4, config)
        assert result.rack_times.shape == (4,)
        assert result.total_time == pytest.approx(
            result.rack_times.max() + result.sync_time
        )

    def test_near_even_split(self, workloads, config):
        result = simulate_multirack_generation(workloads, 4, config)
        assert result.rack_times.max() / result.rack_times.min() < 1.2

    def test_deterministic(self, workloads, config):
        a = simulate_multirack_generation(workloads, 3, config)
        b = simulate_multirack_generation(workloads, 3, config)
        assert a.total_time == b.total_time

    def test_diminishing_returns(self, workloads, config):
        """Per-rack granularity erodes scaling exactly as node-level
        granularity does within a rack."""
        t2 = simulate_multirack_generation(workloads, 2, config).total_time
        t8 = simulate_multirack_generation(workloads, 8, config).total_time
        speedup = t2 / t8
        assert speedup < 4.0  # ideal would be 4


class TestValidation:
    def test_config(self):
        with pytest.raises(ValueError):
            MultiRackConfig(processes_per_rack=1)
        with pytest.raises(ValueError):
            MultiRackConfig(sync_latency=-1.0)
        with pytest.raises(ValueError):
            MultiRackConfig().sync_time(0)

    def test_simulation_args(self, workloads, config):
        with pytest.raises(ValueError):
            simulate_multirack_generation(workloads, 0, config)
        with pytest.raises(ValueError):
            simulate_multirack_generation([], 2, config)
        with pytest.raises(ValueError):
            simulate_multirack_generation(workloads[:2], 3, config)
