"""Tests for the memory-bound node throughput model."""

import pytest

from repro.cluster.throughput import MemoryBoundThroughput


@pytest.fixture()
def node():
    return MemoryBoundThroughput()


def test_linear_up_to_physical_cores(node):
    # The paper: "perfectly linear speedup when using 16 threads".
    for t in (1, 2, 4, 8, 16):
        assert node.throughput(t) == float(t)
        assert node.speedup(t) == float(t)


def test_smt_region_sublinear(node):
    # Beyond 16 threads each extra thread helps, but less than a core.
    for t in (17, 24, 32):
        assert t * 0.7 < node.throughput(t) < t
    assert node.throughput(32) == pytest.approx(16 + 16 * 0.72)


def test_deep_smt_region_still_improves(node):
    # The paper: still improvement up to the 64-thread limit.
    t48 = node.throughput(48)
    t64 = node.throughput(64)
    assert t64 > t48 > node.throughput(32)
    # ... but far from linear.
    assert t64 < 40


def test_strictly_monotone(node):
    values = [node.throughput(t) for t in range(1, 65)]
    assert all(b > a for a, b in zip(values, values[1:]))


def test_thread_limit_enforced(node):
    assert node.max_threads == 64
    with pytest.raises(ValueError, match="at most 64"):
        node.throughput(65)
    with pytest.raises(ValueError):
        node.throughput(0)


def test_time_inverse_of_throughput(node):
    assert node.time(100.0, 1) == pytest.approx(100.0)
    assert node.time(100.0, 16) == pytest.approx(100.0 / 16)
    assert node.time(0.0, 8) == 0.0
    with pytest.raises(ValueError):
        node.time(-1.0, 4)


def test_custom_geometry():
    small = MemoryBoundThroughput(cores=4, smt_ways=2)
    assert small.max_threads == 8
    assert small.throughput(4) == 4.0
    assert small.throughput(8) == pytest.approx(4 + 4 * 0.72)


def test_validation():
    with pytest.raises(ValueError):
        MemoryBoundThroughput(cores=0)
    with pytest.raises(ValueError):
        MemoryBoundThroughput(smt2_efficiency=1.5)
    with pytest.raises(ValueError):
        MemoryBoundThroughput(smt4_efficiency=-0.1)
