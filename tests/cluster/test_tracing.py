"""Tests for DES execution tracing."""

import pytest

from repro.cluster.bgq import simulate_generation
from repro.cluster.tracing import ExecutionTrace, TraceEvent, render_timeline
from repro.cluster.workload import SequenceWorkload


def _workloads(n, work=10.0):
    return [
        SequenceWorkload(f"s{i}", work / 2, work / 2, fixed_overhead=0.1)
        for i in range(n)
    ]


class TestTraceEvent:
    def test_duration(self):
        assert TraceEvent(0, 1.0, 3.5).duration == 2.5

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceEvent(-1, 0.0, 1.0)
        with pytest.raises(ValueError):
            TraceEvent(0, 2.0, 1.0)


class TestExecutionTrace:
    def test_accounting(self):
        trace = ExecutionTrace()
        trace.record(0, 0.0, 2.0)
        trace.record(0, 3.0, 4.0)
        trace.record(1, 0.0, 1.0)
        assert len(trace) == 3
        assert trace.makespan == 4.0
        assert trace.busy_time(0) == 3.0
        assert trace.utilisation(0) == pytest.approx(0.75)
        assert trace.idle_tail(1) == 3.0
        assert trace.workers() == [0, 1]

    def test_empty(self):
        trace = ExecutionTrace()
        assert trace.makespan == 0.0
        assert render_timeline(trace) == "(empty trace)"


class TestIntegrationWithSimulation:
    def test_trace_collected(self):
        trace = ExecutionTrace()
        result = simulate_generation(_workloads(12), 4, trace=trace)
        assert len(trace) == 12
        # Trace busy times reconcile with the simulation's accounting.
        for w in trace.workers():
            assert trace.busy_time(w) == pytest.approx(result.worker_busy[w])

    def test_idle_tail_grows_with_granularity(self):
        """With barely more sequences than workers, some workers idle at
        the end — the granularity effect behind Figure 6's 1024-node
        drop-off, visible in the trace."""
        wl = _workloads(5, work=50.0)
        trace = ExecutionTrace()
        simulate_generation(wl, 5, trace=trace)  # 4 workers, 5 items
        tails = [trace.idle_tail(w) for w in trace.workers()]
        assert max(tails) > 0.0

    def test_render(self):
        trace = ExecutionTrace()
        simulate_generation(_workloads(8), 3, trace=trace)
        text = render_timeline(trace, width=40)
        assert "w0" in text and "w1" in text
        assert "#" in text
        assert "%" in text

    def test_render_caps_workers(self):
        trace = ExecutionTrace()
        simulate_generation(_workloads(40), 21, trace=trace)
        text = render_timeline(trace, max_workers=4)
        assert "more workers" in text

    def test_render_validation(self):
        with pytest.raises(ValueError):
            render_timeline(ExecutionTrace(), width=5)
