"""Tests for the DES core."""

import pytest

from repro.cluster.simulator import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(3.0, lambda: log.append("c"))
    sim.schedule(1.0, lambda: log.append("a"))
    sim.schedule(2.0, lambda: log.append("b"))
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_resolve_in_scheduling_order():
    sim = Simulator()
    log = []
    sim.schedule(1.0, lambda: log.append("first"))
    sim.schedule(1.0, lambda: log.append("second"))
    sim.run()
    assert log == ["first", "second"]


def test_nested_scheduling():
    sim = Simulator()
    log = []

    def outer():
        log.append(("outer", sim.now))
        sim.schedule(2.0, lambda: log.append(("inner", sim.now)))

    sim.schedule(1.0, outer)
    sim.run()
    assert log == [("outer", 1.0), ("inner", 3.0)]


def test_cancelled_events_skipped():
    sim = Simulator()
    log = []
    event = sim.schedule(1.0, lambda: log.append("cancelled"))
    sim.schedule(2.0, lambda: log.append("kept"))
    event.cancel()
    sim.run()
    assert log == ["kept"]


def test_run_until():
    sim = Simulator()
    log = []
    sim.schedule(1.0, lambda: log.append(1))
    sim.schedule(5.0, lambda: log.append(5))
    sim.run(until=2.0)
    assert log == [1]
    assert sim.now == 2.0
    sim.run()
    assert log == [1, 5]


def test_at_absolute_time():
    sim = Simulator()
    hits = []
    sim.at(4.0, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [4.0]


def test_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(1.0, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulator().schedule(-1.0, lambda: None)


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_pending_count():
    sim = Simulator()
    e = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    e.cancel()
    assert sim.pending == 1


def test_runaway_guard():
    sim = Simulator()

    def rearm():
        sim.schedule(1.0, rearm)

    sim.schedule(1.0, rearm)
    with pytest.raises(RuntimeError, match="not terminating"):
        sim.run(max_events=100)


def test_processed_events_counted():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.processed_events == 5
