"""Tests for the BGQ benchmark simulations."""

import pytest

from repro.cluster.bgq import (
    BGQClusterConfig,
    simulate_generation,
    simulate_worker_node,
)
from repro.cluster.throughput import MemoryBoundThroughput
from repro.cluster.workload import PopulationWorkloadModel, SequenceWorkload


def _workloads(n, work=10.0, sigma=0.0, seed=0):
    if sigma == 0.0:
        return [
            SequenceWorkload(f"s{i}", work * 0.4, work * 0.6, fixed_overhead=0.1)
            for i in range(n)
        ]
    return PopulationWorkloadModel("m", work, sigma).sample(n, seed=seed)


class TestWorkerNode:
    def test_runtime_decreases_with_threads(self):
        w = SequenceWorkload("x", 100.0, 100.0, fixed_overhead=1.0)
        times = [simulate_worker_node(w, t) for t in (1, 8, 16, 32, 64)]
        assert all(b < a for a, b in zip(times, times[1:]))

    def test_single_thread_is_total_work(self):
        w = SequenceWorkload("x", 60.0, 40.0, fixed_overhead=2.0)
        assert simulate_worker_node(w, 1) == pytest.approx(102.0)

    def test_linear_region(self):
        w = SequenceWorkload("x", 80.0, 80.0, fixed_overhead=0.0)
        assert simulate_worker_node(w, 16) == pytest.approx(10.0)

def test_fixed_overhead_limits_speedup():
    cheap = SequenceWorkload("cheap", 5.0, 5.0, fixed_overhead=5.0)
    costly = SequenceWorkload("hard", 500.0, 500.0, fixed_overhead=5.0)
    s_cheap = simulate_worker_node(cheap, 1) / simulate_worker_node(cheap, 64)
    s_costly = simulate_worker_node(costly, 1) / simulate_worker_node(costly, 64)
    assert s_costly > s_cheap  # easier sequences flatten out earlier


class TestGeneration:
    def test_all_sequences_processed(self):
        res = simulate_generation(_workloads(20), 5)
        assert res.sequences == 20
        assert res.num_workers == 4
        assert res.total_time > 0

    def test_end_phase_included(self):
        cfg = BGQClusterConfig(master_work_per_sequence=10.0)
        with_end = simulate_generation(_workloads(10), 3, cfg)
        without = simulate_generation(
            _workloads(10), 3, BGQClusterConfig(master_work_per_sequence=0.0)
        )
        assert with_end.total_time > without.total_time
        assert with_end.end_phase_time > 0

    def test_more_workers_faster(self):
        wl = _workloads(64, work=50.0, sigma=0.2, seed=1)
        t2 = simulate_generation(wl, 3).total_time
        t8 = simulate_generation(wl, 9).total_time
        t32 = simulate_generation(wl, 33).total_time
        assert t2 > t8 > t32

    def test_speedup_saturates_at_granularity_limit(self):
        # With as many workers as sequences, adding more cannot help.
        wl = _workloads(10, work=50.0)
        t10 = simulate_generation(wl, 11).total_time
        t40 = simulate_generation(wl, 41).total_time
        assert t40 == pytest.approx(t10, rel=0.05)

    def test_deterministic(self):
        wl = _workloads(30, work=20.0, sigma=0.3, seed=5)
        a = simulate_generation(wl, 7).total_time
        b = simulate_generation(wl, 7).total_time
        assert a == b

    def test_worker_busy_accounting(self):
        wl = _workloads(16, work=10.0)
        res = simulate_generation(wl, 5)
        # Total busy time equals total processing time of all items.
        expected = sum(
            w.fixed_overhead
            + w.parallel_work / MemoryBoundThroughput().throughput(64)
            for w in wl
        )
        assert res.worker_busy.sum() == pytest.approx(expected)

    def test_utilisation_bounds(self):
        res = simulate_generation(_workloads(50, work=30.0), 5)
        assert 0.0 < res.mean_utilisation <= 1.0
        assert res.load_imbalance >= 1.0

    def test_ondemand_beats_static_with_heterogeneity(self):
        wl = _workloads(40, work=100.0, sigma=0.8, seed=9)
        ondemand = simulate_generation(
            wl, 5, BGQClusterConfig(dispatch="ondemand")
        ).total_time
        static = simulate_generation(
            wl, 5, BGQClusterConfig(dispatch="static")
        ).total_time
        assert ondemand <= static

    def test_master_service_time_adds_queueing(self):
        wl = _workloads(100, work=5.0)
        fast = simulate_generation(
            wl, 51, BGQClusterConfig(request_service_time=0.0)
        ).total_time
        slow = simulate_generation(
            wl, 51, BGQClusterConfig(request_service_time=0.5)
        ).total_time
        assert slow > fast

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_generation(_workloads(5), 1)
        with pytest.raises(ValueError):
            simulate_generation([], 4)


class TestClusterConfig:
    def test_defaults_valid(self):
        BGQClusterConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            BGQClusterConfig(threads_per_worker=0)
        with pytest.raises(ValueError):
            BGQClusterConfig(threads_per_worker=65)
        with pytest.raises(ValueError):
            BGQClusterConfig(network_latency=-1.0)
        with pytest.raises(ValueError):
            BGQClusterConfig(dispatch="magic")
