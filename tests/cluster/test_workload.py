"""Tests for workload models."""

import numpy as np
import pytest

from repro.cluster.workload import (
    POPULATION_PRESETS,
    PopulationWorkloadModel,
    SequenceWorkload,
    measure_workload,
)


class TestSequenceWorkload:
    def test_totals(self):
        w = SequenceWorkload("x", 10.0, 20.0, fixed_overhead=2.0)
        assert w.parallel_work == 30.0
        assert w.total_work == 32.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SequenceWorkload("x", -1.0, 0.0)
        with pytest.raises(ValueError):
            SequenceWorkload("x", 0.0, 0.0, fixed_overhead=-1.0)


class TestMeasureWorkload:
    def test_positive_components(self, tiny_world):
        engine = tiny_world.engine
        p = tiny_world.protein("YBL051C")
        w = measure_workload(engine, p.encoded, tiny_world.graph.names, name="t")
        assert w.similarity_work > 0
        assert w.prediction_work > 0
        assert w.name == "t"

    def test_difficulty_scales_with_planted_motifs(self, tiny_world):
        """The designated performance sequences carry increasing numbers of
        motifs; the measured PIPE work must reflect that (the paper's
        notion of computational difficulty)."""
        engine = tiny_world.engine
        names = tiny_world.graph.names
        easy = measure_workload(
            engine, tiny_world.protein("YPL108W").encoded, names
        )
        hard = measure_workload(
            engine, tiny_world.protein("YHR214C-B").encoded, names
        )
        assert hard.prediction_work > easy.prediction_work

    def test_scales_linearly_with_unit(self, tiny_world):
        engine = tiny_world.engine
        p = tiny_world.protein("YBL051C")
        base = measure_workload(engine, p.encoded, tiny_world.graph.names)
        doubled = measure_workload(
            engine, p.encoded, tiny_world.graph.names, core_seconds_per_unit=2.0
        )
        assert doubled.parallel_work == pytest.approx(2 * base.parallel_work)

    def test_more_targets_more_prediction_work(self, tiny_world):
        engine = tiny_world.engine
        p = tiny_world.protein("YBL051C")
        few = measure_workload(engine, p.encoded, tiny_world.graph.names[:5])
        many = measure_workload(engine, p.encoded, tiny_world.graph.names)
        assert many.prediction_work > few.prediction_work
        assert many.similarity_work == few.similarity_work


class TestPopulationModel:
    def test_sample_count_and_positivity(self):
        model = PopulationWorkloadModel("x", 100.0, 0.3)
        draws = model.sample(50, seed=1)
        assert len(draws) == 50
        assert all(w.parallel_work > 0 for w in draws)

    def test_mean_calibrated(self):
        model = PopulationWorkloadModel("x", 100.0, 0.4)
        draws = model.sample(5000, seed=2)
        mean = np.mean([w.parallel_work for w in draws])
        assert mean == pytest.approx(100.0, rel=0.05)

    def test_deterministic_per_seed(self):
        model = PopulationWorkloadModel("x", 50.0, 0.5)
        a = [w.parallel_work for w in model.sample(10, seed=3)]
        b = [w.parallel_work for w in model.sample(10, seed=3)]
        assert a == b

    def test_presets_ordered_by_convergence(self):
        # Converged populations carry more work per sequence and lower
        # relative spread (Sec. 3.2).
        g1 = POPULATION_PRESETS["generation-1"]
        g100 = POPULATION_PRESETS["generation-100"]
        g250 = POPULATION_PRESETS["generation-250"]
        assert g1.mean_work < g100.mean_work < g250.mean_work
        assert g1.sigma > g100.sigma > g250.sigma

    def test_validation(self):
        with pytest.raises(ValueError):
            PopulationWorkloadModel("x", 0.0, 0.5)
        with pytest.raises(ValueError):
            PopulationWorkloadModel("x", 10.0, -0.1)
        with pytest.raises(ValueError):
            PopulationWorkloadModel("x", 10.0, 0.5).sample(0)
