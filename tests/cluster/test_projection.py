"""Tests for the analytic scaling projection."""

import pytest

from repro.cluster.bgq import BGQClusterConfig
from repro.cluster.projection import project_generation_time, validate_projection
from repro.cluster.workload import POPULATION_PRESETS, PopulationWorkloadModel


@pytest.fixture(scope="module")
def workloads():
    return POPULATION_PRESETS["generation-250"].sample(1500, seed=3)


class TestProjection:
    def test_components_positive(self, workloads):
        proj = project_generation_time(workloads, 256)
        assert proj.estimate > 0
        assert proj.perfect_sharing > 0
        assert proj.imbalance_term >= 0
        assert proj.end_phase > 0

    def test_monotone_in_workers(self, workloads):
        estimates = [
            project_generation_time(workloads, p).estimate
            for p in (64, 128, 256, 512)
        ]
        assert all(b < a for a, b in zip(estimates, estimates[1:]))

    def test_never_below_critical_path(self, workloads):
        proj = project_generation_time(workloads, 4096)
        longest = max(w.total_work for w in workloads) / 34.0  # ~ node time
        assert proj.estimate > longest * 0.5

    def test_validation(self, workloads):
        with pytest.raises(ValueError):
            project_generation_time(workloads, 1)
        with pytest.raises(ValueError):
            project_generation_time([], 64)


class TestCrossValidation:
    @pytest.mark.parametrize("procs", [64, 256, 1024])
    @pytest.mark.parametrize("preset", sorted(POPULATION_PRESETS))
    def test_within_tolerance_of_des(self, preset, procs):
        wl = POPULATION_PRESETS[preset].sample(1500, seed=3)
        v = validate_projection(wl, procs)
        assert v["relative_error"] < 0.25, v

    def test_high_variance_regime(self):
        wl = PopulationWorkloadModel("wild", 1000.0, 0.9).sample(400, seed=1)
        v = validate_projection(wl, 128)
        # Looser tolerance: extreme-value effects are only approximated.
        assert v["relative_error"] < 0.6

    def test_custom_config_respected(self, workloads):
        cfg = BGQClusterConfig(master_work_per_sequence=5.0)
        base = project_generation_time(workloads, 256)
        heavy = project_generation_time(workloads, 256, cfg)
        assert heavy.end_phase > base.end_phase
        assert heavy.estimate > base.estimate
