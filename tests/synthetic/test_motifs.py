"""Tests for the motif library."""

import numpy as np
import pytest

from repro.substitution import PAM120
from repro.synthetic.motifs import MotifLibrary, MotifPair


@pytest.fixture(scope="module")
def library():
    return MotifLibrary(
        5, 5, matrix=PAM120, similarity_threshold=20.0, seed=0
    )


def test_pair_count_and_length(library):
    assert len(library) == 5
    for pair in library.pairs:
        assert pair.lock.size == 5
        assert pair.key.size == 5


def test_indexing(library):
    assert library[0] is library.pairs[0]
    assert library[2].index == 2


def test_motifs_mutually_dissimilar(library):
    motifs = [m for _, m in library.all_motifs()]
    for i in range(len(motifs)):
        for j in range(i + 1, len(motifs)):
            score = PAM120.scores[
                motifs[i].astype(int), motifs[j].astype(int)
            ].sum()
            assert score < 20.0


def test_deterministic(library):
    other = MotifLibrary(5, 5, matrix=PAM120, similarity_threshold=20.0, seed=0)
    for a, b in zip(library.pairs, other.pairs):
        assert np.array_equal(a.lock, b.lock)
        assert np.array_equal(a.key, b.key)


def test_different_seeds_differ():
    a = MotifLibrary(3, 5, matrix=PAM120, similarity_threshold=20.0, seed=1)
    b = MotifLibrary(3, 5, matrix=PAM120, similarity_threshold=20.0, seed=2)
    assert not all(
        np.array_equal(x.lock, y.lock) for x, y in zip(a.pairs, b.pairs)
    )


def test_all_motifs_tags(library):
    tags = [t for t, _ in library.all_motifs()]
    assert "lock:0" in tags
    assert "key:4" in tags
    assert len(tags) == 10


def test_motifs_read_only(library):
    with pytest.raises(ValueError):
        library[0].lock[0] = 1


def test_pair_string_forms(library):
    p = library[0]
    assert len(p.lock_str) == 5
    assert len(p.key_str) == 5


def test_impossible_library_raises():
    # Demanding dissimilarity below the minimum possible pair score cannot
    # be satisfied.
    with pytest.raises(RuntimeError, match="dissimilar"):
        MotifLibrary(
            50,
            3,
            matrix=PAM120,
            similarity_threshold=3 * PAM120.min_score,
            seed=0,
            max_attempts=200,
        )


def test_validation():
    with pytest.raises(ValueError):
        MotifLibrary(0, 5, matrix=PAM120, similarity_threshold=20.0)
    with pytest.raises(ValueError):
        MotifLibrary(2, 1, matrix=PAM120, similarity_threshold=20.0)
    with pytest.raises(ValueError):
        MotifPair(0, np.array([], dtype=np.uint8), np.array([1], dtype=np.uint8))
