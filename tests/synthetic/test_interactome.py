"""Tests for interactome generation."""

import pytest

from repro.sequences.protein import Protein
from repro.synthetic.interactome import InteractomeConfig, generate_interactome


def _protein(name, motifs):
    return Protein(name, "MKTLLVACDE", {"motifs": motifs})


def test_complementary_pair_always_connected_at_p1():
    proteins = [
        _protein("L", ["lock:0"]),
        _protein("K", ["key:0"]),
        _protein("N", []),
    ]
    cfg = InteractomeConfig(interaction_prob=1.0, noise_edge_fraction=0.0, seed=0)
    graph = generate_interactome(proteins, cfg)
    assert graph.has_edge("L", "K")
    assert graph.degree("N") == 0
    assert graph.num_edges == 1


def test_same_role_not_connected():
    proteins = [_protein("L1", ["lock:0"]), _protein("L2", ["lock:0"])]
    cfg = InteractomeConfig(interaction_prob=1.0, noise_edge_fraction=0.0)
    graph = generate_interactome(proteins, cfg)
    assert graph.num_edges == 0


def test_different_pairs_not_connected():
    proteins = [_protein("L", ["lock:0"]), _protein("K", ["key:1"])]
    cfg = InteractomeConfig(interaction_prob=1.0, noise_edge_fraction=0.0)
    graph = generate_interactome(proteins, cfg)
    assert graph.num_edges == 0


def test_both_orientations_count():
    proteins = [
        _protein("A", ["key:0"]),
        _protein("B", ["lock:0"]),
    ]
    cfg = InteractomeConfig(interaction_prob=1.0, noise_edge_fraction=0.0)
    graph = generate_interactome(proteins, cfg)
    assert graph.has_edge("A", "B")


def test_interaction_probability_thins_edges():
    proteins = [_protein(f"L{i}", ["lock:0"]) for i in range(12)] + [
        _protein(f"K{i}", ["key:0"]) for i in range(12)
    ]
    dense = generate_interactome(
        proteins, InteractomeConfig(interaction_prob=1.0, noise_edge_fraction=0.0)
    )
    sparse = generate_interactome(
        proteins,
        InteractomeConfig(interaction_prob=0.3, noise_edge_fraction=0.0, seed=3),
    )
    assert dense.num_edges == 144
    assert 0 < sparse.num_edges < 144


def test_noise_edges_added():
    proteins = [
        _protein("L", ["lock:0"]),
        _protein("K", ["key:0"]),
        _protein("N1", []),
        _protein("N2", []),
    ]
    cfg = InteractomeConfig(
        interaction_prob=1.0, noise_edge_fraction=2.0, seed=1
    )
    graph = generate_interactome(proteins, cfg)
    # 1 motif edge + round(2.0 * 1) noise edges.
    assert graph.num_edges == 3


def test_deterministic():
    proteins = [_protein(f"P{i}", ["lock:0"] if i % 2 else ["key:0"]) for i in range(10)]
    cfg = InteractomeConfig(interaction_prob=0.5, seed=7)
    a = generate_interactome(proteins, cfg).edges()
    b = generate_interactome(proteins, cfg).edges()
    assert a == b


def test_multi_motif_protein():
    proteins = [
        _protein("AB", ["lock:0", "key:1"]),
        _protein("C", ["key:0"]),
        _protein("D", ["lock:1"]),
    ]
    cfg = InteractomeConfig(interaction_prob=1.0, noise_edge_fraction=0.0)
    graph = generate_interactome(proteins, cfg)
    assert graph.has_edge("AB", "C")
    assert graph.has_edge("AB", "D")
    assert not graph.has_edge("C", "D")


def test_config_validation():
    with pytest.raises(ValueError):
        InteractomeConfig(interaction_prob=0.0)
    with pytest.raises(ValueError):
        InteractomeConfig(interaction_prob=1.1)
    with pytest.raises(ValueError):
        InteractomeConfig(noise_edge_fraction=-0.5)
