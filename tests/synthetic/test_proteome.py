"""Tests for synthetic proteome generation."""

import numpy as np
import pytest

from repro.substitution import PAM120
from repro.synthetic.motifs import MotifLibrary
from repro.synthetic.proteome import (
    ProteomeConfig,
    diverge_motif,
    embed_motif,
    generate_proteome,
    orf_names,
)


@pytest.fixture(scope="module")
def library():
    return MotifLibrary(4, 5, matrix=PAM120, similarity_threshold=20.0, seed=0)


@pytest.fixture(scope="module")
def proteome(library):
    cfg = ProteomeConfig(num_proteins=40, min_length=30, max_length=80, seed=5)
    return generate_proteome(cfg, library)


class TestOrfNames:
    def test_format(self, rng):
        names = orf_names(50, rng)
        for n in names:
            assert n[0] == "Y"
            assert n[1] in "ABCDEFGHIJKLMNOP"
            assert n[2] in "LR"
            assert n[3:6].isdigit()
            assert n[6] in "WC"

    def test_unique(self, rng):
        names = orf_names(500, rng)
        assert len(set(names)) == 500

    def test_count_validation(self, rng):
        with pytest.raises(ValueError):
            orf_names(0, rng)


class TestDivergeMotif:
    def test_zero_divergence_identical(self, library, rng):
        m = library[0].lock
        assert np.array_equal(diverge_motif(m, 0.0, rng), m)

    def test_full_divergence_changes_everything(self, library, rng):
        m = library[0].lock
        d = diverge_motif(m, 1.0, rng)
        assert not np.any(d == m)

    def test_original_untouched(self, library, rng):
        m = library[0].lock.copy()
        diverge_motif(library[0].lock, 1.0, rng)
        assert np.array_equal(library[0].lock, m)

    def test_values_stay_in_alphabet(self, library, rng):
        d = diverge_motif(library[0].lock, 1.0, rng)
        assert d.max() < 20


class TestEmbedMotif:
    def test_embeds_at_returned_position(self, rng):
        seq = np.zeros(30, dtype=np.uint8)
        motif = np.array([5, 6, 7], dtype=np.uint8)
        occupied = []
        pos = embed_motif(seq, motif, occupied, rng)
        assert pos is not None
        assert np.array_equal(seq[pos : pos + 3], motif)
        assert occupied == [(pos, pos + 3)]

    def test_non_overlapping(self, rng):
        seq = np.zeros(10, dtype=np.uint8)
        motif = np.array([5, 6, 7, 8], dtype=np.uint8)
        occupied = []
        spans = []
        for _ in range(2):
            pos = embed_motif(seq, motif, occupied, rng)
            if pos is not None:
                spans.append((pos, pos + 4))
        for a, b in zip(spans, spans[1:]):
            assert a[1] <= b[0] or b[1] <= a[0]

    def test_too_long_motif_returns_none(self, rng):
        seq = np.zeros(3, dtype=np.uint8)
        motif = np.zeros(5, dtype=np.uint8)
        assert embed_motif(seq, motif, [], rng) is None

    def test_full_sequence_gives_up(self, rng):
        seq = np.zeros(6, dtype=np.uint8)
        occupied = [(0, 6)]
        motif = np.zeros(3, dtype=np.uint8)
        assert embed_motif(seq, motif, occupied, rng) is None


class TestGenerateProteome:
    def test_count_and_lengths(self, proteome):
        assert len(proteome) == 40
        for p in proteome:
            assert 30 <= len(p) <= 80

    def test_names_unique(self, proteome):
        assert len({p.name for p in proteome}) == 40

    def test_motif_annotations_recorded(self, proteome, library):
        tagged = [p for p in proteome if p.annotations.get("motifs")]
        assert tagged, "expected at least some proteins to carry motifs"
        for p in tagged:
            for tag in p.annotations["motifs"]:
                role, _, idx = tag.partition(":")
                assert role in ("lock", "key")
                assert 0 <= int(idx) < len(library)

    def test_deterministic(self, library):
        cfg = ProteomeConfig(num_proteins=10, min_length=30, max_length=60, seed=9)
        a = generate_proteome(cfg, library)
        b = generate_proteome(cfg, library)
        assert [p.sequence for p in a] == [p.sequence for p in b]

    def test_zero_motif_rate(self, library):
        cfg = ProteomeConfig(
            num_proteins=10,
            min_length=30,
            max_length=60,
            motifs_per_protein=0.0,
            seed=1,
        )
        proteome = generate_proteome(cfg, library)
        assert all(not p.annotations["motifs"] for p in proteome)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ProteomeConfig(num_proteins=1)
        with pytest.raises(ValueError):
            ProteomeConfig(min_length=0)
        with pytest.raises(ValueError):
            ProteomeConfig(min_length=50, max_length=40)
        with pytest.raises(ValueError):
            ProteomeConfig(motifs_per_protein=-1)
        with pytest.raises(ValueError):
            ProteomeConfig(motif_divergence=1.5)
