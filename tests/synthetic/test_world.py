"""Tests for the assembled synthetic world."""


import pytest

from repro.synthetic.world import PAPER_TARGETS, WorldConfig, build_world
from repro.synthetic.proteome import ProteomeConfig


def test_paper_targets_all_present(tiny_world):
    for name in PAPER_TARGETS:
        assert name in tiny_world.graph


def test_paper_targets_meet_wetlab_criteria(tiny_world):
    for name, info in PAPER_TARGETS.items():
        p = tiny_world.protein(name)
        assert p.annotations["component"] == "cytoplasm"
        assert 3000 <= p.annotations["abundance"] <= 10000
        assert "stressor" in p.annotations


def test_designated_stressors(tiny_world):
    assert tiny_world.protein("YBL051C").annotations["stressor"] == "cycloheximide"
    assert tiny_world.protein("YAL017W").annotations["stressor"] == "ultraviolet"
    assert tiny_world.protein("YBL051C").annotations["gene"] == "PIN4"
    assert tiny_world.protein("YAL017W").annotations["gene"] == "PSK1"


def test_targets_carry_keys_and_partners(tiny_world):
    for name, info in PAPER_TARGETS.items():
        p = tiny_world.protein(name)
        keys = [t for t in p.annotations["motifs"] if str(t).startswith("key:")]
        assert keys, f"{name} carries no key motif"
        assert tiny_world.graph.degree(name) >= 1


def test_wetlab_targets_have_two_keys(tiny_world):
    for name, info in PAPER_TARGETS.items():
        if info.get("role") in ("wetlab", "tuning"):
            p = tiny_world.protein(name)
            keys = {t for t in p.annotations["motifs"] if str(t).startswith("key:")}
            assert len(keys) >= 2, name


def test_candidate_pool_size(tiny_world):
    assert len(tiny_world.candidate_targets()) >= 18


def test_non_targets_same_component(tiny_world):
    nts = tiny_world.non_targets_for("YBL051C")
    assert "YBL051C" not in nts
    for name in nts:
        assert tiny_world.protein(name).annotations["component"] == "cytoplasm"


def test_non_target_limit_deterministic(tiny_world):
    a = tiny_world.non_targets_for("YBL051C", limit=5)
    b = tiny_world.non_targets_for("YBL051C", limit=5)
    assert a == b
    assert len(a) == 5


def test_paper_target_names_by_role(tiny_world):
    perf = tiny_world.paper_target_names("performance")
    assert set(perf) == {
        "YPL108W",
        "YPL158C",
        "YJR151C",
        "YCL019W",
        "YHR214C-B",
    }
    assert "YBL051C" in tiny_world.paper_target_names("wetlab")
    assert len(tiny_world.paper_target_names()) == len(PAPER_TARGETS)


def test_engine_cached(tiny_world):
    assert tiny_world.engine is tiny_world.engine


def test_build_deterministic():
    cfg = WorldConfig(
        proteome=ProteomeConfig(num_proteins=30, min_length=30, max_length=60, seed=2),
        seed=2,
    )
    a = build_world(cfg)
    b = build_world(cfg)
    assert [p.sequence for p in a.proteins] == [p.sequence for p in b.proteins]
    assert a.graph.edges() == b.graph.edges()


def test_config_validation():
    with pytest.raises(ValueError):
        WorldConfig(num_motif_pairs=0)
    with pytest.raises(ValueError):
        WorldConfig(num_candidate_targets=-1)
    with pytest.raises(ValueError):
        WorldConfig(
            proteome=ProteomeConfig(num_proteins=10),
            num_candidate_targets=11,
        )


def test_too_small_world_rejected():
    cfg = WorldConfig(
        proteome=ProteomeConfig(num_proteins=5, min_length=30, max_length=60),
        num_candidate_targets=0,
    )
    with pytest.raises(ValueError, match="designate"):
        build_world(cfg)
