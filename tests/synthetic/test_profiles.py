"""Tests for scale profiles."""

import pytest

from repro.synthetic.profiles import PROFILES, get_profile


def test_all_profiles_present():
    assert set(PROFILES) == {"tiny", "small", "medium", "paper"}


def test_get_profile():
    assert get_profile("tiny").name == "tiny"
    with pytest.raises(KeyError, match="huge"):
        get_profile("huge")


def test_scales_monotone():
    order = ["tiny", "small", "medium", "paper"]
    sizes = [PROFILES[n].world.proteome.num_proteins for n in order]
    assert sizes == sorted(sizes)
    pops = [PROFILES[n].population_size for n in order]
    assert pops == sorted(pops)


def test_paper_profile_matches_publication():
    paper = get_profile("paper")
    assert paper.world.proteome.num_proteins == 6707
    assert paper.population_size == 1000
    assert paper.design_generations == 250
    assert paper.stall_generations == 50
    assert paper.world.pipe.window_size == 20
    assert paper.non_target_limit is None


def test_build_world_reseed():
    prof = get_profile("tiny")
    a = prof.build_world(seed=11)
    b = prof.build_world(seed=12)
    assert [p.sequence for p in a.proteins] != [p.sequence for p in b.proteins]


def test_profiles_have_descriptions():
    for prof in PROFILES.values():
        assert prof.description
