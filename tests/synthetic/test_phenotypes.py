"""Tests for phenotype annotation and target selection."""

import pytest

from repro.sequences.protein import Protein
from repro.synthetic.phenotypes import (
    CELLULAR_COMPONENTS,
    PhenotypeConfig,
    STRESSORS,
    annotate_phenotypes,
    select_candidate_targets,
)


@pytest.fixture(scope="module")
def annotated():
    proteins = [Protein(f"P{i}", "MKTLLVACDE" * 5) for i in range(200)]
    return annotate_phenotypes(proteins, PhenotypeConfig(seed=0))


def test_every_protein_annotated(annotated):
    for p in annotated:
        assert p.annotations["component"] in CELLULAR_COMPONENTS
        assert isinstance(p.annotations["abundance"], int)
        assert p.annotations["abundance"] > 0


def test_stressor_fraction_respected(annotated):
    with_stressor = [p for p in annotated if "stressor" in p.annotations]
    frac = len(with_stressor) / len(annotated)
    assert 0.2 < frac < 0.5  # configured 0.35 +/- sampling noise
    for p in with_stressor:
        assert p.annotations["stressor"] in STRESSORS


def test_component_mix_roughly_weighted(annotated):
    cyto = sum(1 for p in annotated if p.annotations["component"] == "cytoplasm")
    assert 0.3 < cyto / len(annotated) < 0.6


def test_deterministic():
    proteins = [Protein(f"P{i}", "MKTLLV") for i in range(20)]
    a = annotate_phenotypes(proteins, PhenotypeConfig(seed=3))
    b = annotate_phenotypes(proteins, PhenotypeConfig(seed=3))
    assert [p.annotations for p in a] == [p.annotations for p in b]


def test_originals_not_mutated():
    proteins = [Protein("P0", "MKTLLV")]
    annotate_phenotypes(proteins, PhenotypeConfig(seed=0))
    assert "component" not in proteins[0].annotations


class TestSelection:
    def _make(self, **ann):
        seq = "MKTLLVACDE"
        return Protein("T", seq, ann)

    def test_all_criteria(self):
        good = self._make(
            component="cytoplasm", abundance=5000, stressor="ultraviolet"
        )
        assert select_candidate_targets([good]) == [good]

    def test_wrong_component(self):
        p = self._make(component="nucleus", abundance=5000, stressor="heat")
        assert select_candidate_targets([p]) == []

    def test_abundance_bounds(self):
        low = self._make(component="cytoplasm", abundance=100, stressor="heat")
        high = self._make(component="cytoplasm", abundance=99999, stressor="heat")
        assert select_candidate_targets([low, high]) == []

    def test_stressor_required(self):
        p = self._make(component="cytoplasm", abundance=5000)
        assert select_candidate_targets([p]) == []
        assert select_candidate_targets([p], require_stressor=False) == [p]

    def test_length_cutoff(self):
        long_p = Protein(
            "L",
            "MKTLLVACDE" * 200,
            {"component": "cytoplasm", "abundance": 5000, "stressor": "heat"},
        )
        assert select_candidate_targets([long_p]) == []
        assert select_candidate_targets([long_p], max_length=5000) == [long_p]


def test_config_validation():
    with pytest.raises(ValueError):
        PhenotypeConfig(component_weights={})
    with pytest.raises(ValueError):
        PhenotypeConfig(component_weights={"a": -1.0})
    with pytest.raises(ValueError):
        PhenotypeConfig(stressor_fraction=1.5)
